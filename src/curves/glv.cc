#include "curves/glv.hh"

#include "nt/cornacchia.hh"
#include "nt/primality.hh"
#include "nt/sqrt_mod.hh"
#include "scalar/recode.hh"
#include "support/logging.hh"

namespace jaavr
{

namespace
{

/** Cube root of unity mod m (m = 1 mod 3): (-1 + sqrt(-3)) / 2. */
BigUInt
cubeRootOfUnity(const BigUInt &m, Rng &rng)
{
    BigUInt neg3 = m - BigUInt(3);
    auto s = sqrtMod(neg3, m, rng);
    if (!s)
        panic("cubeRootOfUnity: -3 is not a residue (m != 1 mod 3?)");
    BigUInt inv2 = BigUInt(2).invMod(m);
    BigUInt beta = (m - BigUInt(1) + *s).mulMod(inv2, m);
    // Defensive: beta^2 + beta + 1 = 0 (mod m).
    BigUInt check = (beta.mulMod(beta, m) + beta + BigUInt(1)) % m;
    if (!check.isZero())
        panic("cubeRootOfUnity: check failed");
    return beta;
}

} // anonymous namespace

std::vector<BigUInt>
GlvCurve::candidateOrders(const BigUInt &p, const BigUInt &l,
                          const BigUInt &m)
{
    // The traces of the six twists of a j = 0 curve are the t with
    // 4p = t^2 + 3 s^2 and 3 | s: t in {+-L, +-(L+9M)/2, +-(L-9M)/2}
    // (the halves only when L and 9M have equal parity).
    std::vector<BigInt> traces;
    traces.emplace_back(l);
    traces.emplace_back(l, true);
    BigInt l9p = BigInt(l) + BigInt(m) * BigInt(9);
    BigInt l9m = BigInt(l) - BigInt(m) * BigInt(9);
    for (const BigInt &t2 : {l9p, l9m}) {
        if (t2.magnitude().isZero() || t2.magnitude().isOdd())
            continue;
        BigInt half(t2.magnitude() >> 1, t2.isNegative());
        traces.push_back(half);
        traces.push_back(-half);
    }

    std::vector<BigUInt> orders;
    BigUInt p1 = p + BigUInt(1);
    for (const BigInt &t : traces) {
        BigInt n = BigInt(p1) - t;
        if (n.isNegative())
            continue;
        // Deduplicate.
        bool seen = false;
        for (const BigUInt &o : orders)
            if (o == n.magnitude())
                seen = true;
        if (!seen)
            orders.push_back(n.magnitude());
    }
    return orders;
}

std::optional<GlvParams>
GlvCurve::tryConstruct(const PrimeField &field, Rng &rng)
{
    const BigUInt &p = field.modulus();
    if (p % BigUInt(3) != BigUInt(1))
        return std::nullopt;

    CmDecomposition cm = cmDecompose4p(p, rng);
    std::vector<BigUInt> cands = candidateOrders(p, cm.l, cm.m);

    // Pick the candidate order with the smallest cofactor whose
    // remaining part is prime (the GLV decomposition needs a prime
    // subgroup order).
    BigUInt target_full, target_n, target_cof;
    bool have_target = false;
    for (const BigUInt &cand : cands) {
        BigUInt n = cand;
        BigUInt cof(1);
        for (uint32_t f2 : {2u, 3u, 5u, 7u}) {
            for (;;) {
                BigUInt q, r;
                BigUInt::divMod(n, BigUInt(f2), q, r);
                if (!r.isZero() || cof * BigUInt(f2) > BigUInt(8))
                    break;
                n = q;
                cof = cof * BigUInt(f2);
            }
        }
        if (n.bitLength() < 150 || !isProbablePrime(n, rng))
            continue;
        if (!have_target || cof < target_cof) {
            target_full = cand;
            target_n = n;
            target_cof = cof;
            have_target = true;
        }
    }
    if (!have_target)
        return std::nullopt;

    // Find the smallest b landing in that twist class: the full
    // candidate order must annihilate several random points.
    for (uint64_t b_try = 1; b_try < 64; b_try++) {
        BigUInt b(b_try);
        WeierstrassCurve curve(field, BigUInt(0), b, "glv-candidate");
        bool all = true;
        Rng prng(0x9d0 + b_try);
        for (int i = 0; i < 3 && all; i++) {
            AffinePoint pt = curve.randomPoint(prng);
            if (!curve.mulBinary(target_full, pt).inf)
                all = false;
        }
        if (!all)
            continue;

        GlvParams prm;
        prm.b = b;
        prm.order = target_n;
        prm.cofactor = target_cof;
        prm.beta = cubeRootOfUnity(p, rng);
        BigUInt lam = cubeRootOfUnity(target_n, rng);

        // Generator: random point pushed into the prime subgroup.
        Rng grng(0xeccu + b_try);
        AffinePoint g;
        for (;;) {
            AffinePoint pt = curve.randomPoint(grng);
            g = curve.mulBinary(target_cof, pt);
            if (!g.inf && curve.mulBinary(target_n, g).inf)
                break;
        }
        prm.gx = g.x;
        prm.gy = g.y;

        // Match lambda to beta on the subgroup: phi(G) must equal
        // lambda * G; otherwise take the other root lambda^2.
        AffinePoint phi_g(field.mul(prm.beta, g.x), g.y);
        AffinePoint lam_g = curve.mulBinary(lam, g);
        if (!(lam_g.x == phi_g.x && lam_g.y == phi_g.y)) {
            lam = lam.mulMod(lam, target_n);
            lam_g = curve.mulBinary(lam, g);
            if (!(lam_g.x == phi_g.x && lam_g.y == phi_g.y))
                panic("GlvCurve::tryConstruct: no eigenvalue matches beta");
        }
        prm.lambda = lam;
        return prm;
    }
    return std::nullopt;
}

GlvParams
GlvCurve::construct(const PrimeField &field, Rng &rng)
{
    auto prm = tryConstruct(field, rng);
    if (!prm)
        fatal("GlvCurve::construct: field admits no near-prime-order "
              "GLV curve (try another prime)");
    return *prm;
}

GlvCurve::GlvCurve(const PrimeField &field, const GlvParams &params,
                   std::string name)
    : WeierstrassCurve(field, BigUInt(0), params.b, std::move(name)),
      prm(params), decomp(params.order, params.lambda)
{
    AffinePoint g = generator();
    if (!onCurve(g))
        panic("GlvCurve %s: generator not on curve", ident.c_str());
    if (!mulBinary(prm.order, g).inf)
        panic("GlvCurve %s: generator order mismatch", ident.c_str());
    AffinePoint pg = phi(g);
    AffinePoint lg = mulBinary(prm.lambda, g);
    if (!(pg.x == lg.x && pg.y == lg.y))
        panic("GlvCurve %s: phi(G) != lambda G", ident.c_str());
}

AffinePoint
GlvCurve::generator() const
{
    return AffinePoint(prm.gx, prm.gy);
}

AffinePoint
GlvCurve::phi(const AffinePoint &p) const
{
    if (p.inf)
        return p;
    return AffinePoint(f->mul(prm.beta, p.x), p.y);
}

AffinePoint
GlvCurve::mulGlvJsf(const BigUInt &k, const AffinePoint &p) const
{
    if (p.inf)
        return p;
    GlvSplit split = decomp.decompose(k % prm.order);

    AffinePoint p1 = split.k1.isNegative() ? negate(p) : p;
    AffinePoint p2 = phi(p);
    if (split.k2.isNegative())
        p2 = negate(p2);
    BigUInt k1 = split.k1.magnitude();
    BigUInt k2 = split.k2.magnitude();

    // Precompute the four sums P1 +- P2 in affine form.
    JacobianPoint sum_j = addMixed(toJacobian(p1), p2);
    JacobianPoint dif_j = addMixed(toJacobian(p1), negate(p2));
    AffinePoint sum = toAffine(sum_j);
    AffinePoint dif = toAffine(dif_j);

    auto table = [&](int u1, int u2) -> AffinePoint {
        if (u1 == 0)
            return u2 > 0 ? p2 : negate(p2);
        if (u2 == 0)
            return u1 > 0 ? p1 : negate(p1);
        if (u1 == u2)
            return u1 > 0 ? sum : negate(sum);
        return u1 > 0 ? dif : negate(dif);
    };

    auto digits = jsfDigits(k1, k2);
    JacobianPoint r = JacobianPoint::infinity();
    for (size_t i = digits.size(); i-- > 0;) {
        r = dbl(r);
        auto [u1, u2] = digits[i];
        if (u1 != 0 || u2 != 0)
            r = addMixed(r, table(u1, u2));
    }
    return toAffine(r);
}

} // namespace jaavr
