/**
 * @file
 * Unified scalar/point validation and hardened scalar multiplication
 * for all four curve families (see DESIGN.md, "Fault model &
 * hardening").
 *
 * The fault campaign (bench_fault_campaign) models an attacker who
 * perturbs data during a scalar multiplication; the classic
 * countermeasures implemented here are
 *
 *  - input validation (reject out-of-range scalars, points off the
 *    curve or outside the prime-order subgroup — also the standard
 *    defense against invalid-curve and small-subgroup attacks),
 *  - algorithm-diverse recomputation (run the multiplication twice
 *    with *different* ladder/NAF algorithms and compare, so a fault
 *    that deterministically perturbs one algorithm's data flow still
 *    disagrees with the other),
 *  - output validation (the result must again lie on the curve; a
 *    random data fault almost never produces another curve point).
 */

#ifndef JAAVR_CURVES_VALIDATE_HH
#define JAAVR_CURVES_VALIDATE_HH

#include <optional>
#include <string>

#include "curves/edwards.hh"
#include "curves/glv.hh"
#include "curves/montgomery.hh"
#include "curves/weierstrass.hh"

namespace jaavr
{

/** True iff 1 <= k < n (a valid private scalar / nonce). */
bool validScalar(const BigUInt &k, const BigUInt &n);

/**
 * Full public-point validation on a short Weierstrass curve: not the
 * point at infinity, both coordinates canonical (< p), and on the
 * curve. When @p order is given, additionally order * p == infinity
 * (prime-order subgroup membership).
 */
bool validatePoint(const WeierstrassCurve &c, const AffinePoint &p,
                   const BigUInt *order = nullptr);

/**
 * Twisted-Edwards variant: rejects the identity (0, 1) as well —
 * every protocol input here is expected to be a generator multiple
 * of full order.
 */
bool validatePoint(const EdwardsCurve &c, const AffinePoint &p,
                   const BigUInt *order = nullptr);

/**
 * x-only validation for the Montgomery ladder: x < p and
 * x^3 + A x^2 + x = B y^2 is solvable with y != 0, i.e. rhs/B is a
 * nonzero square. A zero rhs (x = 0 or a 2-torsion x-coordinate)
 * is rejected: such points have order <= 2 and are useless and
 * dangerous as Diffie-Hellman inputs. Twist x-coordinates are
 * rejected too — the campaign's countermeasure is strict on-curve
 * membership, not twist security.
 */
bool validateX(const MontgomeryCurve &c, const BigUInt &x);

/** Outcome of a hardened (validated + recomputed) multiplication. */
struct HardenedMul
{
    AffinePoint point;        ///< result for the full-point families
    std::optional<BigUInt> x; ///< result for the x-only ladder
    bool ok = false;          ///< all checks passed
    std::string reason;       ///< first failed check when !ok
};

/**
 * Hardened k * p on a Weierstrass curve with prime subgroup order
 * @p n: validates (k, p), computes with the co-Z ladder, recomputes
 * with NAF double-and-add, compares, and validates the result.
 */
HardenedMul hardenedMulWeierstrass(const WeierstrassCurve &c,
                                   const BigUInt &k,
                                   const AffinePoint &p,
                                   const BigUInt &n);

/** GLV variant: primary computation uses the endomorphism (JSF). */
HardenedMul hardenedMulGlv(const GlvCurve &c, const BigUInt &k,
                           const AffinePoint &p);

/** Twisted-Edwards variant: DAAA primary, NAF recomputation. */
HardenedMul hardenedMulEdwards(const EdwardsCurve &c, const BigUInt &k,
                               const AffinePoint &p, const BigUInt &n);

/**
 * x-only Montgomery-ladder variant. The ladder is the only x-only
 * algorithm available, so the recomputation is a second ladder pass
 * from an independent copy of the inputs (duplicate-image
 * redundancy, matching the campaign's fault model of one corrupted
 * image).
 *
 * When @p rng is given, each ladder pass additionally runs in
 * randomized projective coordinates with its own fresh nonzero blind
 * (Coron's countermeasure; see MontgomeryCurve::ladder). The result
 * is unchanged — the blinds cancel in the final X/Z division — but
 * first-order DPA/CPA on the intermediates no longer correlates
 * with any fixed-key hypothesis, which bench_sidechannel verifies.
 */
HardenedMul hardenedMulMontgomery(const MontgomeryCurve &c,
                                  const BigUInt &k, const BigUInt &x,
                                  const BigUInt &n, Rng *rng = nullptr);

} // namespace jaavr

#endif // JAAVR_CURVES_VALIDATE_HH
