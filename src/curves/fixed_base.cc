#include "curves/fixed_base.hh"

#include <bit>

#include "support/logging.hh"

namespace jaavr
{

namespace
{

/** Row pattern of column @p col: bit i*d + col of k goes to row i. */
unsigned
combColumn(const BigUInt &k, unsigned width, unsigned cols, unsigned col)
{
    unsigned j = 0;
    for (unsigned row = 0; row < width; row++)
        if (k.bit(row * cols + col))
            j |= 1u << row;
    return j;
}

} // namespace

FixedBaseComb::FixedBaseComb(const WeierstrassCurve &c, const AffinePoint &g,
                             unsigned scalar_bits, unsigned w)
    : base(g), width(w)
{
    if (w < 2 || w > 8)
        fatal("FixedBaseComb: width %u out of range [2, 8]", w);
    if (g.inf || !c.onCurve(g))
        fatal("FixedBaseComb: generator is not a finite curve point");
    if (scalar_bits == 0)
        fatal("FixedBaseComb: scalar_bits must be positive");
    cols = (scalar_bits + w - 1) / w;

    // powers[i] = 2^(i*d) * G.
    std::vector<JacobianPoint> powers(w);
    powers[0] = c.toJacobian(g);
    for (unsigned i = 1; i < w; i++) {
        JacobianPoint t = powers[i - 1];
        for (unsigned s = 0; s < cols; s++)
            t = c.dbl(t);
        powers[i] = t;
    }

    // Entry j (stored at j - 1) is the sum over the set bits of j;
    // clearing the lowest bit reuses the already-built smaller entry.
    size_t entries = (size_t(1) << w) - 1;
    std::vector<JacobianPoint> tj;
    tj.reserve(entries);
    for (size_t j = 1; j <= entries; j++) {
        unsigned lsb = unsigned(std::countr_zero(j));
        size_t rest = j & (j - 1);
        tj.push_back(rest == 0 ? powers[lsb]
                               : c.add(tj[rest - 1], powers[lsb]));
    }
    table = c.toAffineBatch(tj);
    for (const AffinePoint &p : table)
        if (p.inf)
            fatal("FixedBaseComb: generator order below 2^scalar_bits "
                  "collapsed a table entry to infinity");
}

JacobianPoint
FixedBaseComb::mulJacobian(const WeierstrassCurve &c, const BigUInt &k) const
{
    if (k.bitLength() > width * cols)
        fatal("FixedBaseComb: scalar exceeds the table's %u-bit range",
              width * cols);
    JacobianPoint r = JacobianPoint::infinity();
    for (unsigned col = cols; col-- > 0;) {
        r = c.dbl(r);
        unsigned j = combColumn(k, width, cols, col);
        if (j != 0)
            r = c.addMixed(r, table[j - 1]);
    }
    return r;
}

AffinePoint
FixedBaseComb::mul(const WeierstrassCurve &c, const BigUInt &k) const
{
    return c.toAffine(mulJacobian(c, k));
}

EdwardsFixedBaseComb::EdwardsFixedBaseComb(const EdwardsCurve &c,
                                           const AffinePoint &g,
                                           unsigned scalar_bits, unsigned w)
    : base(g), width(w)
{
    if (w < 2 || w > 8)
        fatal("EdwardsFixedBaseComb: width %u out of range [2, 8]", w);
    if (g.inf || !c.onCurve(g))
        fatal("EdwardsFixedBaseComb: generator is not a curve point");
    if (scalar_bits == 0)
        fatal("EdwardsFixedBaseComb: scalar_bits must be positive");
    cols = (scalar_bits + w - 1) / w;

    std::vector<ExtendedPoint> powers(w);
    powers[0] = c.toExtended(g);
    for (unsigned i = 1; i < w; i++) {
        ExtendedPoint t = powers[i - 1];
        for (unsigned s = 0; s < cols; s++)
            t = c.dbl(t, s + 1 == cols);
        powers[i] = t;
    }

    size_t entries = (size_t(1) << w) - 1;
    std::vector<ExtendedPoint> tj;
    tj.reserve(entries);
    for (size_t j = 1; j <= entries; j++) {
        unsigned lsb = unsigned(std::countr_zero(j));
        size_t rest = j & (j - 1);
        tj.push_back(rest == 0 ? powers[lsb]
                               : c.add(tj[rest - 1], powers[lsb]));
    }
    table = c.toAffineBatch(tj);
    tableTd2.reserve(entries);
    for (const AffinePoint &p : table)
        tableTd2.push_back(c.precomputeTd2(p));
}

ExtendedPoint
EdwardsFixedBaseComb::mulExtended(const EdwardsCurve &c,
                                  const BigUInt &k) const
{
    if (k.bitLength() > width * cols)
        fatal("EdwardsFixedBaseComb: scalar exceeds the table's "
              "%u-bit range", width * cols);
    ExtendedPoint r = c.toExtended(c.identity());
    for (unsigned col = cols; col-- > 0;) {
        unsigned j = combColumn(k, width, cols, col);
        r = c.dbl(r, j != 0);
        if (j != 0)
            r = c.addMixed(r, table[j - 1], tableTd2[j - 1]);
    }
    return r;
}

AffinePoint
EdwardsFixedBaseComb::mul(const EdwardsCurve &c, const BigUInt &k) const
{
    return c.toAffine(mulExtended(c, k));
}

} // namespace jaavr
