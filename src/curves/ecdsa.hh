/**
 * @file
 * ECDSA over a short Weierstrass curve with a known prime-order
 * generator (the paper positions its curves for exactly such
 * protocols — key establishment and authentication on IoT nodes).
 *
 * Works with any WeierstrassCurve subtype; when the curve is a
 * GlvCurve the verifier can use the endomorphism-accelerated scalar
 * multiplications.
 */

#ifndef JAAVR_CURVES_ECDSA_HH
#define JAAVR_CURVES_ECDSA_HH

#include <array>

#include "curves/fixed_base.hh"
#include "curves/glv.hh"
#include "curves/weierstrass.hh"

namespace jaavr
{

/** An ECDSA signature. */
struct EcdsaSignature
{
    BigUInt r;
    BigUInt s;
};

/** An ECDSA key pair. */
struct EcdsaKeyPair
{
    BigUInt d;      ///< private scalar in [1, n)
    AffinePoint q;  ///< public point d * G
};

class Ecdsa
{
  public:
    /**
     * @param curve curve with cofactor-1 generator of order n
     * @param g     the generator
     * @param n     prime order of g
     */
    Ecdsa(const WeierstrassCurve &curve, const AffinePoint &g,
          const BigUInt &n);

    /** Convenience constructor for GLV curves (uses their G and n). */
    explicit Ecdsa(const GlvCurve &curve);

    /** Fresh key pair from @p rng (not a CSPRNG: examples only). */
    EcdsaKeyPair generateKey(Rng &rng) const;

    /** Sign the SHA-256 hash of @p message. */
    EcdsaSignature sign(const std::string &message, const BigUInt &d,
                        Rng &rng) const;

    /**
     * Sign with an explicit nonce @p k in [1, n). Returns nullopt for
     * the (negligible-probability) degenerate nonces that make r or s
     * zero — the random-nonce sign() simply retries, and the service
     * layer's batched path shares this assembly so single-call and
     * batched signatures over the same (message, d, k) are
     * bit-identical.
     */
    std::optional<EcdsaSignature>
    signWithNonce(const std::string &message, const BigUInt &d,
                  const BigUInt &k) const;

    /** Verify a signature on @p message. */
    bool verify(const std::string &message, const EcdsaSignature &sig,
                const AffinePoint &q) const;

    const BigUInt &order() const { return n; }
    const AffinePoint &generator() const { return g; }
    const WeierstrassCurve &curve() const { return c; }
    const GlvCurve *glvCurve() const { return glv; }

    /**
     * Attach a fixed-base comb table for this instance's generator
     * (built once per curve at service startup); subsequent fixed-base
     * multiplications in generateKey/sign/verify use it instead of
     * the generic NAF/GLV path. Pass nullptr to detach. The table is
     * not owned and must outlive the attachment; the attachment
     * itself is per-instance state, so concurrent workers each attach
     * the shared table to their own Ecdsa.
     */
    void attachFixedBase(const FixedBaseComb *table);
    const FixedBaseComb *fixedBase() const { return comb; }

    /** Leftmost bits of the hash as an integer mod n. */
    BigUInt hashToScalar(const std::string &message) const;

    /** k * P using the fastest available method. */
    AffinePoint mul(const BigUInt &k, const AffinePoint &p) const;

    /** k * G, through the comb table when one is attached. */
    AffinePoint mulG(const BigUInt &k) const;

  private:
    const WeierstrassCurve &c;
    const GlvCurve *glv;  ///< non-null when endomorphism is available
    const FixedBaseComb *comb = nullptr;  ///< optional, not owned
    AffinePoint g;
    BigUInt n;
};

} // namespace jaavr

#endif // JAAVR_CURVES_ECDSA_HH
