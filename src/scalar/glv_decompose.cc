#include "scalar/glv_decompose.hh"

#include "nt/intsqrt.hh"
#include "support/logging.hh"

namespace jaavr
{

namespace
{

/** Nearest integer to num / den (den > 0), round-half-up. */
BigInt
roundDiv(const BigInt &num, const BigUInt &den)
{
    // round(x / d) = floor((2x + d) / (2d)) for the positive branch;
    // mirror for negatives.
    BigUInt d2 = den << 1;
    BigUInt mag2 = (num.magnitude() << 1);
    if (!num.isNegative()) {
        BigUInt q = (mag2 + den) / d2;
        return BigInt(q);
    }
    BigUInt q = (mag2 + den) / d2;
    // round(-x/d) = -round(x/d) except exactly-half cases; a half-ulp
    // bias here is harmless (k1, k2 merely change by one).
    return BigInt(q, true);
}

} // anonymous namespace

GlvDecomposer::GlvDecomposer(const BigUInt &order, const BigUInt &lambda)
    : n(order), lam(lambda)
{
    if (lam.isZero() || lam >= n)
        fatal("GlvDecomposer: lambda must be in (0, n)");

    // Extended Euclid on (n, lambda), keeping (r_i, t_i) with
    // s_i * n + t_i * lambda = r_i. Each (r_i, -t_i) is a lattice
    // vector: r_i + (-t_i) * lambda = -s_i * n = 0 (mod n).
    BigUInt r0 = n, r1 = lam;
    BigInt t0(0), t1(1);
    BigUInt root = isqrt(n);

    // Iterate until the remainder drops below sqrt(n); remember the
    // previous row (the last with r >= sqrt(n)).
    BigUInt prev_r = r0;
    BigInt prev_t = t0;
    while (r1 >= root) {
        BigUInt q = r0 / r1;
        BigUInt r2 = r0 - q * r1;
        BigInt t2 = t0 - BigInt(q) * t1;
        prev_r = r1;
        prev_t = t1;
        r0 = r1;
        r1 = r2;
        t0 = t1;
        t1 = t2;
    }
    // Now r1 < sqrt(n) <= prev_r = r0's predecessor chain.
    // v1 = (r1, -t1).
    a1_ = BigInt(r1);
    b1_ = -t1;

    // v2 = (prev_r, -prev_t) or the next row, whichever is shorter.
    BigUInt q = r0 / r1;
    BigUInt r2 = r0 - q * r1;
    BigInt t2 = t0 - BigInt(q) * t1;
    BigUInt len_prev = prev_r * prev_r + prev_t.magnitude() * prev_t.magnitude();
    BigUInt len_next = r2 * r2 + t2.magnitude() * t2.magnitude();
    if (len_prev <= len_next) {
        a2_ = BigInt(prev_r);
        b2_ = -prev_t;
    } else {
        a2_ = BigInt(r2);
        b2_ = -t2;
    }

    // Sanity: both vectors must lie in the lattice.
    auto in_lattice = [&](const BigInt &a, const BigInt &b) {
        return (a + b * BigInt(lam)).mod(n).isZero();
    };
    if (!in_lattice(a1_, b1_) || !in_lattice(a2_, b2_))
        panic("GlvDecomposer: basis vectors not in lattice");
}

GlvSplit
GlvDecomposer::decompose(const BigUInt &k_in) const
{
    BigUInt k = k_in % n;
    // Solve (k, 0) = beta1 * v1 + beta2 * v2 over the rationals and
    // round: beta1 = b2*k / det, beta2 = -b1*k / det with
    // det = a1*b2 - a2*b1 = +-n.
    BigInt det = a1_ * b2_ - a2_ * b1_;
    if (det.magnitude() != n)
        panic("GlvDecomposer: |det| != n");
    bool det_neg = det.isNegative();

    BigInt c1 = roundDiv(b2_ * BigInt(k), n);
    BigInt c2 = roundDiv(-(b1_ * BigInt(k)), n);
    if (det_neg) {
        c1 = -c1;
        c2 = -c2;
    }

    GlvSplit out;
    out.k1 = BigInt(k) - c1 * a1_ - c2 * a2_;
    out.k2 = -(c1 * b1_) - c2 * b2_;

    // Verify k1 + k2 * lambda = k (mod n).
    BigUInt check = (out.k1 + out.k2 * BigInt(lam)).mod(n);
    if (check != k)
        panic("GlvDecomposer: decomposition check failed");
    return out;
}

} // namespace jaavr
