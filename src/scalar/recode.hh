/**
 * @file
 * Scalar recodings used by the point-multiplication methods of the
 * paper: binary expansion, Non-Adjacent Form (NAF), width-w NAF, and
 * the Joint Sparse Form (JSF) for the GLV two-scalar multiplication.
 *
 * All digit vectors are least-significant-digit first.
 */

#ifndef JAAVR_SCALAR_RECODE_HH
#define JAAVR_SCALAR_RECODE_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "bigint/big_uint.hh"

namespace jaavr
{

/** Plain binary digits (0/1), LSB first; empty for zero. */
std::vector<int8_t> binaryDigits(const BigUInt &k);

/**
 * Non-Adjacent Form: digits in {-1, 0, 1}, no two adjacent non-zero
 * digits. Average non-zero density 1/3, which is what gives the NAF
 * double-and-add method its speed (paper, Section V-B).
 */
std::vector<int8_t> nafDigits(const BigUInt &k);

/**
 * Width-w NAF: odd digits with |d| < 2^(w-1), at most one non-zero
 * digit in any w consecutive positions.
 */
std::vector<int8_t> wNafDigits(const BigUInt &k, unsigned w);

/**
 * Joint Sparse Form of two non-negative scalars (Solinas). Returns
 * digit pairs in {-1, 0, 1}^2; the joint Hamming density is 1/2,
 * giving the n/2 doublings + n/4 additions cost of the GLV method
 * (paper, Section II-D).
 */
std::vector<std::pair<int8_t, int8_t>>
jsfDigits(const BigUInt &k1, const BigUInt &k2);

/** Rebuild the scalar from signed digits (for tests). */
BigUInt digitsToScalar(const std::vector<int8_t> &digits);

} // namespace jaavr

#endif // JAAVR_SCALAR_RECODE_HH
