/**
 * @file
 * GLV scalar decomposition (Gallant-Lambert-Vanstone, CRYPTO 2001).
 *
 * Given the group order n and the endomorphism eigenvalue lambda
 * (a root of the characteristic polynomial mod n), a scalar k is
 * rewritten as k = k1 + k2 * lambda (mod n) with |k1|, |k2| about
 * sqrt(n), so that k*P = k1*P + k2*phi(P) can be computed with two
 * half-length scalars via Shamir's trick (paper, Section II-D).
 */

#ifndef JAAVR_SCALAR_GLV_DECOMPOSE_HH
#define JAAVR_SCALAR_GLV_DECOMPOSE_HH

#include "bigint/big_int.hh"
#include "bigint/big_uint.hh"

namespace jaavr
{

/** Signed half-length scalar pair with k = k1 + k2 * lambda (mod n). */
struct GlvSplit
{
    BigInt k1;
    BigInt k2;
};

/**
 * Precomputed short lattice basis for a fixed (n, lambda) pair.
 *
 * Construction runs the extended Euclidean algorithm on (n, lambda)
 * and takes the two shortest vectors (r_i, -t_i) around the sqrt(n)
 * threshold (Hankerson et al., Alg. 3.74).
 */
class GlvDecomposer
{
  public:
    GlvDecomposer(const BigUInt &n, const BigUInt &lambda);

    /** Decompose k (reduced mod n) into the half-length pair. */
    GlvSplit decompose(const BigUInt &k) const;

    const BigUInt &order() const { return n; }
    const BigUInt &lambda() const { return lam; }

    /** Basis vectors (exposed for tests). */
    const BigInt &a1() const { return a1_; }
    const BigInt &b1() const { return b1_; }
    const BigInt &a2() const { return a2_; }
    const BigInt &b2() const { return b2_; }

  private:
    BigUInt n;
    BigUInt lam;
    // Lattice basis v1 = (a1, b1), v2 = (a2, b2) with
    // a + b*lambda = 0 (mod n) for both vectors.
    BigInt a1_, b1_, a2_, b2_;
};

} // namespace jaavr

#endif // JAAVR_SCALAR_GLV_DECOMPOSE_HH
