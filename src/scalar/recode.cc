#include "scalar/recode.hh"

#include "bigint/big_int.hh"
#include "support/logging.hh"

namespace jaavr
{

std::vector<int8_t>
binaryDigits(const BigUInt &k)
{
    std::vector<int8_t> out;
    unsigned bits = k.bitLength();
    out.reserve(bits);
    for (unsigned i = 0; i < bits; i++)
        out.push_back(k.bit(i) ? 1 : 0);
    return out;
}

std::vector<int8_t>
nafDigits(const BigUInt &k)
{
    std::vector<int8_t> out;
    BigUInt v = k;
    while (!v.isZero()) {
        if (v.isOdd()) {
            // d = 2 - (v mod 4) in {1, -1}.
            int8_t d = (v.low32() & 3) == 1 ? 1 : -1;
            out.push_back(d);
            if (d == 1)
                v -= BigUInt(1);
            else
                v += BigUInt(1);
        } else {
            out.push_back(0);
        }
        v = v >> 1;
    }
    return out;
}

std::vector<int8_t>
wNafDigits(const BigUInt &k, unsigned w)
{
    if (w < 2 || w > 7)
        panic("wNafDigits: w out of range");
    std::vector<int8_t> out;
    BigUInt v = k;
    const uint32_t mod = 1u << w;
    const int32_t half = 1 << (w - 1);
    while (!v.isZero()) {
        if (v.isOdd()) {
            int32_t d = static_cast<int32_t>(v.low32() & (mod - 1));
            if (d >= half)
                d -= mod;
            out.push_back(static_cast<int8_t>(d));
            if (d > 0)
                v -= BigUInt(static_cast<uint64_t>(d));
            else
                v += BigUInt(static_cast<uint64_t>(-d));
        } else {
            out.push_back(0);
        }
        v = v >> 1;
    }
    return out;
}

std::vector<std::pair<int8_t, int8_t>>
jsfDigits(const BigUInt &k1_in, const BigUInt &k2_in)
{
    // Solinas' Joint Sparse Form in the carry formulation (Hankerson
    // et al., Alg. 3.50): d1, d2 are 0/1 carries, the scalars are only
    // ever shifted right, and the digit decisions look at the low
    // three bits of k + d.
    std::vector<std::pair<int8_t, int8_t>> out;
    BigUInt k1 = k1_in, k2 = k2_in;
    uint32_t d1 = 0, d2 = 0;

    while (!k1.isZero() || !k2.isZero() || d1 != 0 || d2 != 0) {
        uint32_t l1 = (k1.low32() + d1) & 7;
        uint32_t l2 = (k2.low32() + d2) & 7;
        int u1 = 0, u2 = 0;
        if (l1 & 1) {
            u1 = 2 - static_cast<int>(l1 & 3);  // +1 or -1
            if ((l1 == 3 || l1 == 5) && ((l2 & 3) == 2))
                u1 = -u1;
        }
        if (l2 & 1) {
            u2 = 2 - static_cast<int>(l2 & 3);
            if ((l2 == 3 || l2 == 5) && ((l1 & 3) == 2))
                u2 = -u2;
        }
        out.emplace_back(static_cast<int8_t>(u1), static_cast<int8_t>(u2));

        if (2 * static_cast<int>(d1) == 1 + u1)
            d1 = 1 - d1;
        if (2 * static_cast<int>(d2) == 1 + u2)
            d2 = 1 - d2;
        k1 = k1 >> 1;
        k2 = k2 >> 1;
    }
    // Trim a possible all-zero top digit pair.
    while (!out.empty() && out.back().first == 0 && out.back().second == 0)
        out.pop_back();
    return out;
}

BigUInt
digitsToScalar(const std::vector<int8_t> &digits)
{
    BigInt acc(0);
    for (size_t i = digits.size(); i-- > 0;) {
        acc = acc + acc;  // *2
        acc += BigInt(static_cast<int64_t>(digits[i]));
    }
    if (acc.isNegative())
        panic("digitsToScalar: negative value");
    return acc.magnitude();
}

} // namespace jaavr
