#include "debug/server.hh"

#include <cctype>

#include <unistd.h>

#include "avr/leakage.hh"
#include "obs/flight.hh"
#include "obs/trace.hh"
#include "support/hex.hh"
#include "support/logging.hh"
#include "support/metrics.hh"

namespace jaavr
{

namespace
{

/** Parse a (short) hex number; false on empty/overlong/non-hex. */
bool
parseHexNum(std::string_view s, uint64_t &v)
{
    if (s.empty() || s.size() > 16)
        return false;
    v = 0;
    for (char c : s) {
        int d = hexDigit(c);
        if (d < 0)
            return false;
        v = (v << 4) | static_cast<uint64_t>(d);
    }
    return true;
}

std::string
hexOfText(const std::string &text)
{
    return rspHexBytes(reinterpret_cast<const uint8_t *>(text.data()),
                       text.size());
}

} // anonymous namespace

GdbServer::GdbServer(DebugTarget &target, DebugTransport &transport)
    : target(target), transport(transport)
{
    // What `?` reports before anything ran: stopped by the stub.
    lastStop.kind = StopInfo::Kind::Stepped;
    lastStop.signal = 5;
}

void
GdbServer::logLine(const char *dir, std::string_view text)
{
    if (!logFile)
        return;
    std::string clean;
    size_t n = std::min<size_t>(text.size(), 512);
    for (size_t i = 0; i < n; i++) {
        unsigned char c = static_cast<unsigned char>(text[i]);
        if (isprint(c))
            clean.push_back(static_cast<char>(c));
        else
            clean += csprintf("\\x%02x", c);
    }
    if (text.size() > n)
        clean += csprintf("... (%zu bytes)", text.size());
    fprintf(logFile, "%s %s\n", dir, clean.c_str());
    fflush(logFile);
}

void
GdbServer::sendRaw(std::string_view bytes)
{
    transport.send(bytes);
}

void
GdbServer::sendPacket(std::string_view payload)
{
    logLine("->", payload);
    lastFrame = rspFrame(payload, /*rle=*/true);
    transport.send(lastFrame);
}

void
GdbServer::sendConsole(const std::string &text)
{
    sendPacket("O" + hexOfText(text));
}

void
GdbServer::sendStop(const StopInfo &info)
{
    if (info.kind == StopInfo::Kind::Exited) {
        sendPacket("W00");
        return;
    }
    if (info.kind == StopInfo::Kind::Trapped && info.trap) {
        std::string what = info.trap.describe();
        if (!symbols.empty())
            what += " [" + symbols.resolve(info.trap.pc) + "]";
        sendConsole(what + "\n");
    }
    std::string s = csprintf("T%02x", info.signal);
    if (info.kind == StopInfo::Kind::Watchpoint) {
        const char *name = info.watchKind == WatchKind::Write
                               ? "watch"
                               : info.watchKind == WatchKind::Read
                                     ? "rwatch"
                                     : "awatch";
        s += csprintf("%s:%x;", name, kGdbDataBase + info.watchAddr);
    }
    if (info.kind == StopInfo::Kind::Breakpoint)
        s += "swbreak:;";
    // Registers gdb always wants with a stop: SREG (0x20), SP (0x21),
    // PC (0x22), little-endian hex bytes.
    std::array<uint8_t, DebugTarget::kRegBlockLen> block =
        target.readRegisters();
    s += csprintf("20:%02x;", block[32]);
    s += "21:" + rspHexBytes(&block[33], 2) + ";";
    s += "22:" + rspHexBytes(&block[35], 4) + ";";
    sendPacket(s);
}

bool
GdbServer::poll()
{
    if (!alive_)
        return false;
    std::string in;
    bool open = transport.poll(in);
    if (!in.empty()) {
        for (const RspEvent &ev : decoder.feed(in)) {
            switch (ev.kind) {
              case RspEvent::Kind::Ack:
                break;
              case RspEvent::Kind::Nak:
                if (!lastFrame.empty())
                    sendRaw(lastFrame);
                break;
              case RspEvent::Kind::Break:
                logLine("<-", "<break>");
                if (running_) {
                    running_ = false;
                    lastStop = target.interrupt();
                    sendStop(lastStop);
                }
                break;
              case RspEvent::Kind::Packet:
                if (!noAck)
                    sendRaw("+");
                logLine("<-", ev.payload);
                handlePacket(ev.payload);
                break;
              case RspEvent::Kind::BadPacket:
                logLine("!!", ev.payload);
                if (!noAck)
                    sendRaw("-");
                break;
            }
            if (!alive_)
                return false;
        }
    }
    if (running_) {
        StopInfo s = target.resume(sliceCycles);
        if (s.kind != StopInfo::Kind::Running) {
            running_ = false;
            lastStop = s;
            sendStop(s);
        }
    }
    if (!open && !transport.connected())
        alive_ = false;
    return alive_;
}

void
GdbServer::serve()
{
    while (poll()) {
        if (!running_)
            usleep(2000);
    }
}

void
GdbServer::startContinue(const std::string &args)
{
    uint64_t addr;
    if (!args.empty() && parseHexNum(args, addr))
        target.machine().setPc(static_cast<uint32_t>(addr / 2));
    running_ = true;
}

void
GdbServer::doStep(const std::string &args)
{
    uint64_t addr;
    if (!args.empty() && parseHexNum(args, addr))
        target.machine().setPc(static_cast<uint32_t>(addr / 2));
    lastStop = target.stepOne();
    sendStop(lastStop);
}

std::string
GdbServer::handleBreakpoint(const std::string &payload, bool insert)
{
    // Z<type>,<addr>,<kind>[;cond...] — conditions are unsupported
    // and ignored.
    size_t c1 = payload.find(',');
    size_t c2 = c1 == std::string::npos ? std::string::npos
                                        : payload.find(',', c1 + 1);
    if (c2 == std::string::npos)
        return "E01";
    size_t end = payload.find(';', c2 + 1);
    std::string_view p = payload;
    uint64_t addr, kind;
    if (!parseHexNum(p.substr(c1 + 1, c2 - c1 - 1), addr) ||
        !parseHexNum(p.substr(c2 + 1, end == std::string::npos
                                          ? std::string::npos
                                          : end - c2 - 1),
                     kind))
        return "E01";
    bool ok = false;
    switch (payload[1]) {
      case '0': // software breakpoint
      case '1': // "hardware" breakpoint: same mechanism on the ISS
        ok = insert
                 ? target.setBreakpoint(static_cast<uint32_t>(addr))
                 : target.clearBreakpoint(static_cast<uint32_t>(addr));
        break;
      case '2':
      case '3':
      case '4': {
        WatchKind wk = payload[1] == '2'
                           ? WatchKind::Write
                           : payload[1] == '3' ? WatchKind::Read
                                               : WatchKind::Access;
        uint16_t len = static_cast<uint16_t>(kind ? kind : 1);
        ok = insert ? target.setWatchpoint(
                          wk, static_cast<uint32_t>(addr), len)
                    : target.clearWatchpoint(
                          wk, static_cast<uint32_t>(addr), len);
        break;
      }
      default:
        return ""; // unsupported type: let gdb fall back
    }
    return ok ? "OK" : "E01";
}

std::string
GdbServer::handleMonitor(const std::string &cmd)
{
    const Machine &m = target.machine();
    if (cmd == "help") {
        return "jaavr-gdb monitor commands:\n"
               "  profile  per-routine cycle attribution\n"
               "  stats    ISS execution statistics\n"
               "  metrics  telemetry snapshot (counters/gauges)\n"
               "  leakage  leakage-trace recorder status\n"
               "  flight   flight-recorder status\n"
               "  flight dump  write the flight rings to disk now\n"
               "  trace status span-tracer status\n"
               "  reset    clear statistics and profile\n"
               "  trap     describe the last machine trap\n"
               "  symbols  list known symbols\n";
    }
    if (cmd == "flight") {
        if (!flightRec)
            return "no flight recorder attached (run jaavr-gdb with "
                   "--flight FILE)\n";
        return flightRec->statusLine() + "\n";
    }
    if (cmd == "flight dump") {
        if (!flightRec)
            return "no flight recorder attached (run jaavr-gdb with "
                   "--flight FILE)\n";
        // Prefer the recorder's own trigger path so the on-demand
        // dump lands next to (and in the same format as) any
        // trap-triggered one.
        const std::string &path = flightRec->dumpPath().empty()
                                      ? flightDumpPath
                                      : flightRec->dumpPath();
        if (!flightRec->dump(path, "gdb_monitor"))
            return "flight dump failed: cannot write " + path + "\n";
        return csprintf("flight dump written to %s (%zu sources, "
                        "%llu events retained)\n",
                        path.c_str(), flightRec->sourceCount(),
                        static_cast<unsigned long long>(
                            flightRec->totalRecorded()));
    }
    if (cmd == "trace status") {
        if (!tracer)
            return "no span tracer attached\n";
        return tracer->statusLine() + "\n";
    }
    if (cmd == "leakage") {
        if (!leakTracer)
            return "no leakage tracer attached (run jaavr-gdb with "
                   "--leak-trace FILE)\n";
        std::string out = csprintf(
            "leakage tracer: %s, model %s\n"
            "  %zu samples over %llu cycles, %zu markers\n",
            leakTracer->active() ? "recording" : "idle",
            leakTracer->model().describe().c_str(),
            leakTracer->samples().size(),
            static_cast<unsigned long long>(leakTracer->time()),
            leakTracer->markers().size());
        for (const auto &[label, idx] : leakTracer->markers())
            out += csprintf("  marker %-24s @ sample %zu\n",
                            label.c_str(), idx);
        return out;
    }
    if (cmd == "profile") {
        if (!profiler)
            return "no profiler attached\n";
        return profiler->textReport();
    }
    if (cmd == "stats") {
        const ExecStats &st = m.stats();
        return csprintf("mode %s: %llu instructions, %llu cycles, "
                        "%llu MAC stall NOPs, pc=0x%04x, sp=0x%04x\n",
                        cpuModeName(m.mode()),
                        static_cast<unsigned long long>(st.instructions),
                        static_cast<unsigned long long>(st.cycles),
                        static_cast<unsigned long long>(st.macStallNops),
                        m.pc(), m.sp());
    }
    if (cmd == "metrics") {
        // A fresh registry per request: the machine's retired
        // statistics are the source of truth, the registry is a view.
        MetricsRegistry reg;
        m.publishMetrics(reg);
        std::string snap = reg.textSnapshot();
        return snap.empty() ? "no metrics\n" : snap;
    }
    if (cmd == "reset") {
        target.machine().resetStats();
        if (profiler)
            profiler->reset();
        return "statistics reset\n";
    }
    if (cmd == "trap") {
        if (!m.trap())
            return "no pending trap\n";
        std::string what = m.trap().describe();
        if (!symbols.empty())
            what += " [" + symbols.resolve(m.trap().pc) + "]";
        return what + "\n";
    }
    if (cmd == "symbols") {
        if (symbols.empty())
            return "no symbols loaded\n";
        std::string out;
        for (const auto &[addr, name] : symbols.entries())
            out += csprintf("0x%04x %s\n", addr, name.c_str());
        return out;
    }
    return "unknown command \"" + cmd + "\"; try \"monitor help\"\n";
}

void
GdbServer::handlePacket(const std::string &p)
{
    if (p.empty()) {
        sendPacket("");
        return;
    }
    switch (p[0]) {
      case 'q':
        if (p.rfind("qSupported", 0) == 0) {
            sendPacket(csprintf("PacketSize=%zx;QStartNoAckMode+;"
                                "swbreak+;hwbreak+",
                                kRspMaxPayload));
        } else if (p.rfind("qRcmd,", 0) == 0) {
            std::vector<uint8_t> raw;
            if (!rspUnhexBytes(std::string_view(p).substr(6), raw)) {
                sendPacket("E01");
                break;
            }
            std::string cmd(raw.begin(), raw.end());
            sendPacket(hexOfText(handleMonitor(cmd)));
        } else if (p == "qC") {
            sendPacket("QC1");
        } else if (p.rfind("qAttached", 0) == 0) {
            sendPacket("1");
        } else if (p == "qfThreadInfo") {
            sendPacket("m1");
        } else if (p == "qsThreadInfo") {
            sendPacket("l");
        } else if (p == "qOffsets") {
            sendPacket("Text=0;Data=0;Bss=0");
        } else if (p.rfind("qSymbol", 0) == 0) {
            sendPacket("OK");
        } else {
            sendPacket("");
        }
        break;
      case 'Q':
        if (p == "QStartNoAckMode") {
            sendPacket("OK");
            noAck = true;
        } else {
            sendPacket("");
        }
        break;
      case '?':
        sendStop(lastStop);
        break;
      case 'g': {
        std::array<uint8_t, DebugTarget::kRegBlockLen> block =
            target.readRegisters();
        sendPacket(rspHexBytes(block.data(), block.size()));
        break;
      }
      case 'G': {
        std::vector<uint8_t> bytes;
        if (!rspUnhexBytes(std::string_view(p).substr(1), bytes) ||
            bytes.size() != DebugTarget::kRegBlockLen) {
            sendPacket("E01");
            break;
        }
        std::array<uint8_t, DebugTarget::kRegBlockLen> block;
        std::copy(bytes.begin(), bytes.end(), block.begin());
        target.writeRegisters(block);
        sendPacket("OK");
        break;
      }
      case 'p': {
        uint64_t regno;
        std::vector<uint8_t> bytes;
        if (parseHexNum(std::string_view(p).substr(1), regno))
            bytes = target.readRegister(static_cast<unsigned>(regno));
        sendPacket(bytes.empty()
                       ? "E01"
                       : rspHexBytes(bytes.data(), bytes.size()));
        break;
      }
      case 'P': {
        size_t eq = p.find('=');
        uint64_t regno;
        std::vector<uint8_t> bytes;
        if (eq == std::string::npos ||
            !parseHexNum(std::string_view(p).substr(1, eq - 1),
                         regno) ||
            !rspUnhexBytes(std::string_view(p).substr(eq + 1), bytes) ||
            !target.writeRegister(static_cast<unsigned>(regno),
                                  bytes)) {
            sendPacket("E01");
            break;
        }
        sendPacket("OK");
        break;
      }
      case 'm': {
        size_t comma = p.find(',');
        uint64_t addr, len;
        std::vector<uint8_t> bytes;
        if (comma == std::string::npos ||
            !parseHexNum(std::string_view(p).substr(1, comma - 1),
                         addr) ||
            !parseHexNum(std::string_view(p).substr(comma + 1), len) ||
            len > kRspMaxPayload / 2 ||
            !target.readMemory(static_cast<uint32_t>(addr),
                               static_cast<size_t>(len), bytes)) {
            sendPacket("E01");
            break;
        }
        sendPacket(rspHexBytes(bytes.data(), bytes.size()));
        break;
      }
      case 'M':
      case 'X': {
        size_t comma = p.find(',');
        size_t colon = p.find(':');
        uint64_t addr, len;
        if (comma == std::string::npos || colon == std::string::npos ||
            colon < comma ||
            !parseHexNum(std::string_view(p).substr(1, comma - 1),
                         addr) ||
            !parseHexNum(
                std::string_view(p).substr(comma + 1, colon - comma - 1),
                len)) {
            sendPacket("E01");
            break;
        }
        std::vector<uint8_t> bytes;
        if (p[0] == 'M') {
            if (!rspUnhexBytes(std::string_view(p).substr(colon + 1),
                               bytes)) {
                sendPacket("E01");
                break;
            }
        } else {
            bytes.assign(p.begin() + colon + 1, p.end());
        }
        if (bytes.size() != len ||
            !target.writeMemory(static_cast<uint32_t>(addr), bytes)) {
            sendPacket("E01");
            break;
        }
        sendPacket("OK");
        break;
      }
      case 'c':
        startContinue(p.substr(1));
        break;
      case 'C': {
        size_t sc = p.find(';');
        startContinue(sc == std::string::npos ? "" : p.substr(sc + 1));
        break;
      }
      case 's':
        doStep(p.substr(1));
        break;
      case 'S': {
        size_t sc = p.find(';');
        doStep(sc == std::string::npos ? "" : p.substr(sc + 1));
        break;
      }
      case 'v':
        if (p == "vCont?") {
            sendPacket("vCont;c;C;s;S");
        } else if (p.rfind("vCont;", 0) == 0) {
            char action = p.size() > 6 ? p[6] : 'c';
            if (action == 's' || action == 'S')
                doStep("");
            else
                startContinue("");
        } else {
            sendPacket("");
        }
        break;
      case 'Z':
        sendPacket(handleBreakpoint(p, true));
        break;
      case 'z':
        sendPacket(handleBreakpoint(p, false));
        break;
      case 'H':
        sendPacket("OK");
        break;
      case 'D':
        sendPacket("OK");
        logLine("--", "client detached");
        alive_ = false;
        break;
      case 'k':
        logLine("--", "client killed session");
        alive_ = false;
        break;
      default:
        sendPacket("");
        break;
    }
}

} // namespace jaavr
