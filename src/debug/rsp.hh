/**
 * @file
 * GDB Remote Serial Protocol (RSP) packet codec.
 *
 * This layer speaks only the wire format — `$payload#xx` framing with
 * a mod-256 checksum, `}` (0x7d) escaping, `*` run-length expansion,
 * and the single-byte `+` / `-` acknowledgements plus the 0x03
 * interrupt character. It knows nothing about sockets or about what
 * the payloads mean; the transport feeds it raw bytes and the server
 * consumes the decoded event stream. That split is what lets the
 * tests drive a complete debug session over an in-process loopback
 * with no real gdb and no network.
 *
 * The decoder is an incremental state machine: bytes may arrive one
 * at a time or in arbitrary clumps, and malformed input of any kind
 * (bad checksum, truncated frame, dangling escape, bogus run length,
 * oversized payload) is reported as a BadPacket event — it never
 * aborts and always resynchronises on the next frame.
 */

#ifndef JAAVR_DEBUG_RSP_HH
#define JAAVR_DEBUG_RSP_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace jaavr
{

/**
 * Largest decoded payload the stub accepts, advertised to gdb through
 * qSupported's PacketSize. Anything larger is discarded as BadPacket.
 */
constexpr size_t kRspMaxPayload = 0x4000;

/** One decoded protocol event. */
struct RspEvent
{
    enum class Kind
    {
        Ack,       ///< '+' seen between frames.
        Nak,       ///< '-' seen between frames; retransmit last reply.
        Break,     ///< 0x03 interrupt seen between frames.
        Packet,    ///< Well-formed frame; payload is fully decoded.
        BadPacket, ///< Malformed frame; payload holds the reason.
    };

    Kind kind;
    std::string payload;
};

/**
 * Incremental RSP frame decoder. Call feed() with whatever bytes the
 * transport produced; complete events are appended to the returned
 * vector in arrival order. Partial frames are buffered internally
 * across calls.
 */
class RspDecoder
{
  public:
    std::vector<RspEvent> feed(std::string_view bytes);

    /** True while a frame is buffered but not yet complete. */
    bool midFrame() const { return state != State::Idle; }

  private:
    enum class State
    {
        Idle,    ///< Between frames; acks and 0x03 live here.
        Payload, ///< Accumulating raw payload bytes up to '#'.
        Check1,  ///< Expecting the first checksum hex digit.
        Check2,  ///< Expecting the second checksum hex digit.
    };

    void finishFrame(std::vector<RspEvent> &events);

    State state = State::Idle;
    std::string raw;      ///< Raw payload bytes (pre-escape, pre-RLE).
    uint8_t sum = 0;      ///< Running mod-256 checksum over raw.
    int checkHi = 0;      ///< First checksum digit value.
    int checkLo = 0;      ///< Second checksum digit value.
    bool overflow = false; ///< Payload exceeded kRspMaxPayload.
};

/**
 * Expand escapes and run-length encoding in a checksum-verified raw
 * payload. Returns false (with a reason in @p err) on a dangling
 * escape, a leading or dangling '*', an invalid run-length count, or
 * an expansion exceeding kRspMaxPayload.
 */
bool rspExpand(std::string_view raw, std::string &out, std::string *err);

/**
 * Frame @p payload as `$...#xx`, escaping '$', '#', '}' and '*'.
 * When @p rle is set, runs of repeated characters are compressed with
 * '*' run-length encoding (skipping the counts the protocol forbids);
 * replies use this, commands conventionally do not.
 */
std::string rspFrame(std::string_view payload, bool rle = false);

/** Lowercase hex encoding of @p n bytes at @p p. */
std::string rspHexBytes(const uint8_t *p, size_t n);

/**
 * Decode an even-length lowercase/uppercase hex string into bytes.
 * Returns false on odd length or a non-hex digit.
 */
bool rspUnhexBytes(std::string_view hex, std::vector<uint8_t> &out);

} // namespace jaavr

#endif // JAAVR_DEBUG_RSP_HH
