#include "debug/target.hh"

#include <algorithm>

namespace jaavr
{

namespace
{

/** gdb signal numbers (gdb/signals.def, not host signals). */
constexpr uint8_t kGdbSigInt = 2;
constexpr uint8_t kGdbSigIll = 4;
constexpr uint8_t kGdbSigTrap = 5;
constexpr uint8_t kGdbSigBus = 10;
constexpr uint8_t kGdbSigSegv = 11;

} // anonymous namespace

DebugTarget::DebugTarget(Machine &m) : mach(m)
{
    mach.setDebugHook(this);
}

DebugTarget::~DebugTarget()
{
    if (mach.debugHook() == this)
        mach.setDebugHook(nullptr);
}

/* ---- registers --------------------------------------------------- */

std::array<uint8_t, DebugTarget::kRegBlockLen>
DebugTarget::readRegisters() const
{
    std::array<uint8_t, kRegBlockLen> block{};
    for (unsigned i = 0; i < 32; i++)
        block[i] = mach.reg(i);
    block[32] = mach.sreg();
    uint16_t sp = mach.sp();
    block[33] = static_cast<uint8_t>(sp);
    block[34] = static_cast<uint8_t>(sp >> 8);
    uint32_t byte_pc = mach.pc() * 2; // gdb PCs are byte addresses
    for (unsigned i = 0; i < 4; i++)
        block[35 + i] = static_cast<uint8_t>(byte_pc >> (8 * i));
    return block;
}

void
DebugTarget::writeRegisters(
    const std::array<uint8_t, kRegBlockLen> &block)
{
    for (unsigned i = 0; i < 32; i++)
        mach.setReg(i, block[i]);
    mach.setSreg(block[32]);
    mach.setSp(static_cast<uint16_t>(block[33]) |
               (static_cast<uint16_t>(block[34]) << 8));
    uint32_t byte_pc = 0;
    for (unsigned i = 0; i < 4; i++)
        byte_pc |= static_cast<uint32_t>(block[35 + i]) << (8 * i);
    mach.setPc(byte_pc / 2);
}

size_t
DebugTarget::regSize(unsigned regno)
{
    if (regno < 32 || regno == 32)
        return 1;
    if (regno == 33)
        return 2;
    if (regno == 34)
        return 4;
    return 0;
}

std::vector<uint8_t>
DebugTarget::readRegister(unsigned regno) const
{
    std::array<uint8_t, kRegBlockLen> block = readRegisters();
    static constexpr size_t offsets[] = {0, 32, 33, 35};
    size_t n = regSize(regno);
    if (n == 0)
        return {};
    size_t off = regno < 32 ? regno : offsets[regno - 32 + 1];
    return {block.begin() + off, block.begin() + off + n};
}

bool
DebugTarget::writeRegister(unsigned regno,
                           const std::vector<uint8_t> &bytes)
{
    size_t n = regSize(regno);
    if (n == 0 || bytes.size() != n)
        return false;
    if (regno < 32) {
        mach.setReg(regno, bytes[0]);
    } else if (regno == 32) {
        mach.setSreg(bytes[0]);
    } else if (regno == 33) {
        mach.setSp(static_cast<uint16_t>(bytes[0]) |
                   (static_cast<uint16_t>(bytes[1]) << 8));
    } else {
        uint32_t byte_pc = 0;
        for (unsigned i = 0; i < 4; i++)
            byte_pc |= static_cast<uint32_t>(bytes[i]) << (8 * i);
        mach.setPc(byte_pc / 2);
    }
    return true;
}

/* ---- gdb composite address space --------------------------------- */

bool
DebugTarget::readMemory(uint32_t addr, size_t len,
                        std::vector<uint8_t> &out) const
{
    out.clear();
    out.reserve(len);
    for (size_t i = 0; i < len; i++) {
        uint32_t a = addr + static_cast<uint32_t>(i);
        if (a < kGdbDataBase) {
            // Flash, byte-addressed little-endian words; reads past
            // the end of the device return erased flash.
            if (a >= Machine::flashWords * 2) {
                out.push_back(0xff);
                continue;
            }
            uint16_t w = mach.flashWord(a >> 1);
            out.push_back(
                static_cast<uint8_t>((a & 1) ? (w >> 8) : w));
        } else if (a < kGdbEepromBase) {
            out.push_back(
                mach.readData(static_cast<uint16_t>(a - kGdbDataBase)));
        } else if (a - kGdbEepromBase < kEepromSize) {
            out.push_back(eepromByte(a - kGdbEepromBase));
        } else {
            return false;
        }
    }
    return true;
}

bool
DebugTarget::writeMemory(uint32_t addr,
                         const std::vector<uint8_t> &bytes)
{
    // Validate the whole range first so a failing write is atomic.
    for (size_t i = 0; i < bytes.size(); i++) {
        uint32_t a = addr + static_cast<uint32_t>(i);
        if (a < kGdbDataBase) {
            if (a >= Machine::flashWords * 2)
                return false;
        } else if (a < kGdbEepromBase) {
            continue;
        } else if (a - kGdbEepromBase >= kEepromSize) {
            return false;
        }
    }
    for (size_t i = 0; i < bytes.size(); i++) {
        uint32_t a = addr + static_cast<uint32_t>(i);
        if (a < kGdbDataBase) {
            uint16_t w = mach.flashWord(a >> 1);
            uint16_t nw = (a & 1)
                ? static_cast<uint16_t>((w & 0x00ff) | (bytes[i] << 8))
                : static_cast<uint16_t>((w & 0xff00) | bytes[i]);
            if (nw != w) // XOR patch refreshes the decode cache too
                mach.corruptFlashWord(a >> 1, w ^ nw);
        } else if (a < kGdbEepromBase) {
            mach.writeData(static_cast<uint16_t>(a - kGdbDataBase),
                           bytes[i]);
        } else {
            eeprom.resize(kEepromSize, 0xff);
            eeprom[a - kGdbEepromBase] = bytes[i];
        }
    }
    return true;
}

/* ---- breakpoints and watchpoints --------------------------------- */

bool
DebugTarget::setBreakpoint(uint32_t addr)
{
    if (addr >= kGdbDataBase || (addr & 1) ||
        addr >= Machine::flashWords * 2)
        return false;
    breakWords.insert(addr >> 1);
    return true;
}

bool
DebugTarget::clearBreakpoint(uint32_t addr)
{
    return breakWords.erase(addr >> 1) != 0;
}

bool
DebugTarget::setWatchpoint(WatchKind kind, uint32_t addr, uint16_t len)
{
    if (len == 0)
        return false;
    if (addr >= kGdbDataBase) {
        if (addr >= kGdbEepromBase)
            return false; // EEPROM traffic is not instruction traffic
        addr -= kGdbDataBase;
    }
    if (addr > 0xffff)
        return false;
    watches.push_back({kind, static_cast<uint16_t>(addr), len});
    return true;
}

bool
DebugTarget::clearWatchpoint(WatchKind kind, uint32_t addr,
                             uint16_t len)
{
    if (addr >= kGdbDataBase && addr < kGdbEepromBase)
        addr -= kGdbDataBase;
    auto it = std::find_if(
        watches.begin(), watches.end(), [&](const Watch &w) {
            return w.kind == kind && w.addr == addr && w.len == len;
        });
    if (it == watches.end())
        return false;
    watches.erase(it);
    return true;
}

/* ---- DebugHook --------------------------------------------------- */

bool
DebugTarget::wantsStops() const
{
    return !breakWords.empty() || !watches.empty();
}

bool
DebugTarget::onBoundary(uint32_t pc, uint64_t)
{
    // A watched access retired during the previous instruction: stop
    // now, with PC past the accessing instruction (gdb's semantics
    // for write watchpoints).
    if (watchHit)
        return true;
    bool skip = skipArmed && pc == skipPc;
    skipArmed = false;
    return !skip && breakWords.count(pc) != 0;
}

void
DebugTarget::onLoad(uint16_t addr)
{
    matchWatch(addr, false);
}

void
DebugTarget::onStore(uint16_t addr)
{
    matchWatch(addr, true);
}

void
DebugTarget::matchWatch(uint16_t addr, bool is_store)
{
    if (watchHit)
        return;
    for (const Watch &w : watches) {
        if (addr < w.addr || addr >= w.addr + w.len)
            continue;
        bool kind_matches = w.kind == WatchKind::Access ||
                            (is_store ? w.kind == WatchKind::Write
                                      : w.kind == WatchKind::Read);
        if (!kind_matches)
            continue;
        watchHit = true;
        hitKind = w.kind;
        // Report the watchpoint's own address: that is the key gdb
        // uses to find the matching watchpoint in its table.
        hitAddr = w.addr;
        return;
    }
}

/* ---- execution control ------------------------------------------- */

StopInfo
DebugTarget::stopFor(StopInfo::Kind kind, uint8_t signal) const
{
    StopInfo info;
    info.kind = kind;
    info.signal = signal;
    info.cycles = mach.stats().cycles;
    return info;
}

StopInfo
DebugTarget::mapTrap(const Trap &trap) const
{
    uint8_t sig = kGdbSigTrap;
    switch (trap.kind) {
      case TrapKind::IllegalOpcode:
        sig = kGdbSigIll;
        break;
      case TrapKind::FlashOutOfBounds:
      case TrapKind::SramOutOfBounds:
      case TrapKind::StackOverflow:
        sig = kGdbSigSegv;
        break;
      case TrapKind::MacHazard:
        sig = kGdbSigBus;
        break;
      default:
        break;
    }
    StopInfo info = stopFor(StopInfo::Kind::Trapped, sig);
    info.trap = trap;
    return info;
}

StopInfo
DebugTarget::stepOne()
{
    inFlight = false;
    skipArmed = false;
    watchHit = false;
    if (mach.pc() == Machine::exitAddress)
        return stopFor(StopInfo::Kind::Exited, 0);
    mach.step();
    if (mach.trap())
        return mapTrap(mach.trap());
    if (watchHit) {
        watchHit = false;
        StopInfo info = stopFor(StopInfo::Kind::Watchpoint, kGdbSigTrap);
        info.watchKind = hitKind;
        info.watchAddr = hitAddr;
        return info;
    }
    if (mach.pc() == Machine::exitAddress)
        return stopFor(StopInfo::Kind::Exited, 0);
    return stopFor(StopInfo::Kind::Stepped, kGdbSigTrap);
}

StopInfo
DebugTarget::resume(uint64_t slice_cycles)
{
    if (mach.pc() == Machine::exitAddress) {
        inFlight = false;
        return stopFor(StopInfo::Kind::Exited, 0);
    }
    if (!inFlight) {
        // Fresh continue from a reported stop: don't re-trigger a
        // breakpoint at the resume PC before anything executed.
        inFlight = true;
        skipArmed = true;
        skipPc = mach.pc();
        watchHit = false;
    }
    RunResult r = mach.run(slice_cycles);
    if (r.trap.kind == TrapKind::CycleBudget)
        return stopFor(StopInfo::Kind::Running, 0);
    inFlight = false;
    skipArmed = false;
    if (!r.trap)
        return stopFor(StopInfo::Kind::Exited, 0);
    if (r.trap.kind == TrapKind::DebugBreak) {
        if (watchHit) {
            watchHit = false;
            StopInfo info =
                stopFor(StopInfo::Kind::Watchpoint, kGdbSigTrap);
            info.watchKind = hitKind;
            info.watchAddr = hitAddr;
            return info;
        }
        return stopFor(StopInfo::Kind::Breakpoint, kGdbSigTrap);
    }
    return mapTrap(r.trap);
}

StopInfo
DebugTarget::interrupt()
{
    inFlight = false;
    skipArmed = false;
    watchHit = false;
    return stopFor(StopInfo::Kind::Interrupted, kGdbSigInt);
}

void
DebugTarget::setupCall(uint32_t entry_word_addr)
{
    // Mirror Machine::call()'s pushPc: low byte first, SP decrements
    // after each byte.
    mach.writeData(mach.sp(),
                   static_cast<uint8_t>(Machine::exitAddress));
    mach.setSp(mach.sp() - 1);
    mach.writeData(mach.sp(),
                   static_cast<uint8_t>(Machine::exitAddress >> 8));
    mach.setSp(mach.sp() - 1);
    mach.setPc(entry_word_addr);
}

} // namespace jaavr
