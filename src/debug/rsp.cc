#include "debug/rsp.hh"

#include "support/hex.hh"
#include "support/logging.hh"

namespace jaavr
{

std::vector<RspEvent>
RspDecoder::feed(std::string_view bytes)
{
    std::vector<RspEvent> events;
    for (char ch : bytes) {
        uint8_t b = static_cast<uint8_t>(ch);
        switch (state) {
          case State::Idle:
            if (b == '$') {
                state = State::Payload;
                raw.clear();
                sum = 0;
                overflow = false;
            } else if (b == '+') {
                events.push_back({RspEvent::Kind::Ack, {}});
            } else if (b == '-') {
                events.push_back({RspEvent::Kind::Nak, {}});
            } else if (b == 0x03) {
                events.push_back({RspEvent::Kind::Break, {}});
            }
            // Anything else between frames is line noise; drop it.
            break;
          case State::Payload:
            if (b == '#') {
                state = State::Check1;
            } else if (b == '$') {
                // A new start-of-frame mid-payload means the previous
                // frame was truncated; report it and restart.
                events.push_back(
                    {RspEvent::Kind::BadPacket, "truncated frame"});
                raw.clear();
                sum = 0;
                overflow = false;
            } else {
                sum += b;
                if (raw.size() >= kRspMaxPayload)
                    overflow = true;
                else
                    raw.push_back(ch);
            }
            break;
          case State::Check1:
            checkHi = hexDigit(ch);
            state = State::Check2;
            break;
          case State::Check2:
            checkLo = hexDigit(ch);
            finishFrame(events);
            state = State::Idle;
            break;
        }
    }
    return events;
}

void
RspDecoder::finishFrame(std::vector<RspEvent> &events)
{
    if (checkHi < 0 || checkLo < 0) {
        events.push_back(
            {RspEvent::Kind::BadPacket, "non-hex checksum digit"});
        return;
    }
    if (overflow) {
        events.push_back({RspEvent::Kind::BadPacket,
                          csprintf("payload exceeds %zu bytes",
                                   kRspMaxPayload)});
        return;
    }
    uint8_t want = static_cast<uint8_t>((checkHi << 4) | checkLo);
    if (want != sum) {
        events.push_back(
            {RspEvent::Kind::BadPacket,
             csprintf("checksum mismatch (computed 0x%02x, frame says "
                      "0x%02x)",
                      sum, want)});
        return;
    }
    std::string decoded, err;
    if (!rspExpand(raw, decoded, &err)) {
        events.push_back({RspEvent::Kind::BadPacket, err});
        return;
    }
    events.push_back({RspEvent::Kind::Packet, std::move(decoded)});
}

bool
rspExpand(std::string_view raw, std::string &out, std::string *err)
{
    out.clear();
    auto fail = [&](const char *what) {
        if (err)
            *err = what;
        return false;
    };
    for (size_t i = 0; i < raw.size(); i++) {
        uint8_t b = static_cast<uint8_t>(raw[i]);
        if (b == 0x7d) {
            if (i + 1 >= raw.size())
                return fail("dangling escape at end of payload");
            out.push_back(static_cast<char>(raw[++i] ^ 0x20));
        } else if (b == '*') {
            if (out.empty())
                return fail("run-length marker with no preceding byte");
            if (i + 1 >= raw.size())
                return fail("run-length marker at end of payload");
            uint8_t count = static_cast<uint8_t>(raw[++i]);
            if (count < 29 + 1 || count > 126)
                return fail("invalid run-length count");
            out.append(count - 29, out.back());
        } else {
            out.push_back(raw[i]);
        }
        if (out.size() > kRspMaxPayload)
            return fail("expanded payload exceeds maximum size");
    }
    return true;
}

namespace
{

bool
rspNeedsEscape(char c)
{
    return c == '$' || c == '#' || c == '}' || c == '*';
}

void
rspAppendEscaped(std::string &out, char c)
{
    if (rspNeedsEscape(c)) {
        out.push_back('\x7d');
        out.push_back(static_cast<char>(c ^ 0x20));
    } else {
        out.push_back(c);
    }
}

} // anonymous namespace

std::string
rspFrame(std::string_view payload, bool rle)
{
    std::string body;
    size_t i = 0;
    while (i < payload.size()) {
        char c = payload[i];
        size_t run = 1;
        if (rle && !rspNeedsEscape(c)) {
            while (i + run < payload.size() && payload[i + run] == c)
                run++;
        }
        // A run of n identical bytes becomes the byte plus '*' and a
        // count of n - 1 extra repeats, offset by 29. Counts 6 and 7
        // would encode as '#' / '$', which the protocol forbids, so
        // runs that land there are shortened; runs longer than the
        // largest count split into several groups.
        while (run >= 4) {
            size_t extra = std::min(run - 1, size_t{126 - 29});
            if (extra == 6 || extra == 7)
                extra = 5;
            body.push_back(c);
            body.push_back('*');
            body.push_back(static_cast<char>(29 + extra));
            i += extra + 1;
            run -= extra + 1;
        }
        for (; run > 0; run--, i++)
            rspAppendEscaped(body, c);
    }
    uint8_t sum = 0;
    for (char c : body)
        sum += static_cast<uint8_t>(c);
    std::string out;
    out.reserve(body.size() + 4);
    out.push_back('$');
    out += body; // may contain NULs — never go through c_str().
    out.push_back('#');
    out += csprintf("%02x", sum);
    return out;
}

std::string
rspHexBytes(const uint8_t *p, size_t n)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(2 * n);
    for (size_t i = 0; i < n; i++) {
        out.push_back(digits[p[i] >> 4]);
        out.push_back(digits[p[i] & 0xf]);
    }
    return out;
}

bool
rspUnhexBytes(std::string_view hex, std::vector<uint8_t> &out)
{
    out.clear();
    if (hex.size() % 2 != 0)
        return false;
    out.reserve(hex.size() / 2);
    for (size_t i = 0; i < hex.size(); i += 2) {
        int hi = hexDigit(hex[i]);
        int lo = hexDigit(hex[i + 1]);
        if (hi < 0 || lo < 0)
            return false;
        out.push_back(static_cast<uint8_t>((hi << 4) | lo));
    }
    return true;
}

} // namespace jaavr
