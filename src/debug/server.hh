/**
 * @file
 * The RSP stub: glues the packet codec, a transport and a
 * DebugTarget into a gdb-compatible debug server.
 *
 * The server is single-threaded and poll-driven. Each poll() drains
 * the transport through the codec, dispatches any complete packets,
 * and — while the target is continuing — advances execution by one
 * cycle slice, so gdb's asynchronous interrupt (0x03) is picked up
 * between slices. serve() wraps poll() in an idle-throttled loop for
 * the standalone `jaavr-gdb` binary; tests call poll() directly on a
 * LoopbackTransport and stay fully deterministic.
 *
 * Supported packets: qSupported, QStartNoAckMode, ?, g/G, p/P, m/M/X,
 * c/C/s/S, vCont, Z0/Z1 (sw breakpoints), Z2/Z3/Z4 (write/read/access
 * watchpoints), D, k, H/qC/qAttached/qfThreadInfo/qsThreadInfo/
 * qOffsets/qSymbol, and qRcmd ("monitor") commands exposing the ISS
 * profiler and execution statistics.
 */

#ifndef JAAVR_DEBUG_SERVER_HH
#define JAAVR_DEBUG_SERVER_HH

#include <cstdio>
#include <string>

#include "avr/profiler.hh"
#include "avrasm/symbol_table.hh"
#include "debug/rsp.hh"
#include "debug/target.hh"
#include "debug/transport.hh"

namespace jaavr
{

class LeakTracer;

namespace obs
{
class FlightRecorder;
class SpanTracer;
} // namespace obs

class GdbServer
{
  public:
    GdbServer(DebugTarget &target, DebugTransport &transport);

    /** Attach the profiler behind `monitor profile` (not owned). */
    void setProfiler(CallGraphProfiler *p) { profiler = p; }

    /** Attach a leakage tracer behind `monitor leakage` (not owned). */
    void setLeakTracer(LeakTracer *t) { leakTracer = t; }

    /** Symbols for `monitor symbols` and trap locations. */
    void setSymbols(SymbolTable syms) { symbols = std::move(syms); }

    /**
     * Attach the flight recorder behind `monitor flight` /
     * `monitor flight dump` (not owned). @p dump_path is where the
     * on-demand dump lands when the recorder has no trigger path of
     * its own.
     */
    void setFlightRecorder(obs::FlightRecorder *f,
                           std::string dump_path = "FLIGHT_gdb.json")
    {
        flightRec = f;
        flightDumpPath = std::move(dump_path);
    }

    /** Attach the span tracer behind `monitor trace` (not owned). */
    void setTracer(obs::SpanTracer *t) { tracer = t; }

    /**
     * Mirror the session to @p log (not owned): one line per decoded
     * command, reply and stop event. CI uploads this as an artifact.
     */
    void setLog(std::FILE *log) { logFile = log; }

    /** Cycles per continue slice between transport polls. */
    void setSliceCycles(uint64_t cycles) { sliceCycles = cycles; }

    /** True while a continue is in progress. */
    bool running() const { return running_; }

    /** True until the client detaches/kills or the transport dies. */
    bool alive() const { return alive_; }

    /**
     * Drain the transport, dispatch packets, and advance a pending
     * continue by one slice. Returns alive().
     */
    bool poll();

    /**
     * Run poll() until the session ends, sleeping briefly whenever
     * there is nothing to do (standalone server loop).
     */
    void serve();

  private:
    void logLine(const char *dir, std::string_view text);
    void sendRaw(std::string_view bytes);
    void sendPacket(std::string_view payload);
    /** `O` packet: console text shown by gdb, only mid-run. */
    void sendConsole(const std::string &text);
    void sendStop(const StopInfo &info);
    void handlePacket(const std::string &payload);
    void startContinue(const std::string &args);
    void doStep(const std::string &args);
    std::string handleMonitor(const std::string &cmd);
    std::string handleBreakpoint(const std::string &payload,
                                 bool insert);

    DebugTarget &target;
    DebugTransport &transport;
    RspDecoder decoder;
    CallGraphProfiler *profiler = nullptr;
    LeakTracer *leakTracer = nullptr;
    obs::FlightRecorder *flightRec = nullptr;
    std::string flightDumpPath = "FLIGHT_gdb.json";
    obs::SpanTracer *tracer = nullptr;
    SymbolTable symbols;
    std::FILE *logFile = nullptr;
    uint64_t sliceCycles = 200000;
    std::string lastFrame; ///< retransmitted on '-'
    StopInfo lastStop;
    bool noAck = false;
    bool running_ = false;
    bool alive_ = true;
};

} // namespace jaavr

#endif // JAAVR_DEBUG_SERVER_HH
