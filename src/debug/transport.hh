/**
 * @file
 * Byte transports for the RSP debug stub.
 *
 * The server core is written against the small DebugTransport
 * interface so the protocol logic never touches a socket directly.
 * Production uses TcpServerTransport (a poll-based, single-client
 * TCP listener that avr-gdb's `target remote :port` connects to);
 * tests and CI use LoopbackTransport, an in-process pipe pair, so a
 * complete debug session runs deterministically with no network and
 * no external gdb binary.
 */

#ifndef JAAVR_DEBUG_TRANSPORT_HH
#define JAAVR_DEBUG_TRANSPORT_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace jaavr
{

/**
 * One byte-stream peer. poll() is non-blocking: it appends whatever
 * input is pending (possibly nothing) and returns false only once the
 * peer is gone for good.
 */
class DebugTransport
{
  public:
    virtual ~DebugTransport() = default;

    /**
     * Append pending input bytes to @p out without blocking.
     * @return false once the connection is closed/broken; true
     * otherwise, even when no bytes were pending.
     */
    virtual bool poll(std::string &out) = 0;

    /** Queue/send @p bytes to the peer. */
    virtual void send(std::string_view bytes) = 0;

    /** True while a peer is attached. */
    virtual bool connected() const = 0;

    /** Drop the peer (listener, if any, stays up). */
    virtual void close() = 0;
};

/**
 * In-process transport: the "client" half is plain method calls, so a
 * test is both gdb and the wire. Single-threaded and deterministic —
 * bytes come back exactly when the test asks for them.
 */
class LoopbackTransport : public DebugTransport
{
  public:
    // Server side (DebugTransport).
    bool poll(std::string &out) override;
    void send(std::string_view bytes) override;
    bool connected() const override { return open; }
    void close() override { open = false; }

    // Client side, for tests.
    /** Push bytes that the server will see on its next poll(). */
    void clientSend(std::string_view bytes);
    /** Take everything the server has sent so far. */
    std::string clientTake();

  private:
    std::string toServer;
    std::string toClient;
    bool open = true;
};

/**
 * Single-client TCP listener. accept and recv are non-blocking, so
 * poll() composes with the ISS run loop: the server slices execution
 * and polls between slices to catch gdb's interrupt (0x03).
 */
class TcpServerTransport : public DebugTransport
{
  public:
    TcpServerTransport() = default;
    ~TcpServerTransport() override;

    TcpServerTransport(const TcpServerTransport &) = delete;
    TcpServerTransport &operator=(const TcpServerTransport &) = delete;

    /**
     * Bind and listen on 127.0.0.1:@p port (0 picks an ephemeral
     * port; read it back with port()). Returns false on failure.
     */
    bool listen(uint16_t port);

    /** Port actually bound, valid after listen() succeeds. */
    uint16_t port() const { return boundPort; }

    /**
     * Accept a pending connection if one is waiting. Non-blocking;
     * returns true once a client is attached.
     */
    bool acceptClient();

    bool poll(std::string &out) override;
    void send(std::string_view bytes) override;
    bool connected() const override { return clientFd >= 0; }
    void close() override;

    /** Also tear down the listening socket. */
    void shutdown();

  private:
    int listenFd = -1;
    int clientFd = -1;
    uint16_t boundPort = 0;
};

} // namespace jaavr

#endif // JAAVR_DEBUG_TRANSPORT_HH
