/**
 * @file
 * DebugTarget: the adapter between the RSP server and a Machine.
 *
 * It owns everything gdb-facing about the core — the AVR register
 * block layout, gdb's composite address space (flash at 0, data space
 * at 0x800000, EEPROM at 0x810000), software breakpoints, data
 * watchpoints, and the stop-reason model — while the Machine itself
 * stays debugger-agnostic behind the DebugHook interface.
 *
 * Execution control:
 *  - stepOne() uses Machine::step(), the reference path, so a single
 *    step is exact even where the fast path batches state.
 *  - resume() uses Machine::run() with a caller-chosen cycle slice;
 *    a CycleBudget trap inside a slice is reported as Kind::Running
 *    so the server can poll the transport for gdb's interrupt (0x03)
 *    between slices and call resume() again.
 *  - While wantsStops() is false (no breakpoints, no watchpoints),
 *    run() selects the plain fast-path instantiation: an attached but
 *    passive debugger costs zero cycles and zero time (pinned by
 *    tests/test_decode_cache.cc).
 */

#ifndef JAAVR_DEBUG_TARGET_HH
#define JAAVR_DEBUG_TARGET_HH

#include <array>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "avr/machine.hh"

namespace jaavr
{

/** gdb address-space bases for AVR (avr-gdb's convention). */
constexpr uint32_t kGdbDataBase = 0x800000;
constexpr uint32_t kGdbEepromBase = 0x810000;
/** EEPROM size served behind kGdbEepromBase (ATmega128: 4 KiB). */
constexpr uint32_t kEepromSize = 0x1000;

/** Watchpoint flavour, matching gdb's Z2/Z3/Z4 packets. */
enum class WatchKind : uint8_t
{
    Write,  ///< Z2 "watch"
    Read,   ///< Z3 "rwatch"
    Access, ///< Z4 "awatch"
};

/** Why execution stopped (or didn't). */
struct StopInfo
{
    enum class Kind
    {
        Running,     ///< slice budget expired; call resume() again
        Breakpoint,  ///< software breakpoint hit
        Watchpoint,  ///< data watchpoint hit
        Stepped,     ///< one instruction retired
        Interrupted, ///< stopped on the client's break request
        Trapped,     ///< machine trap (illegal opcode, OOB, ...)
        Exited,      ///< reached the exit sentinel
    };

    Kind kind = Kind::Running;
    uint8_t signal = 0;        ///< gdb signal number for stop replies
    Trap trap;                 ///< machine trap for Kind::Trapped
    WatchKind watchKind = WatchKind::Write; ///< for Kind::Watchpoint
    uint16_t watchAddr = 0;    ///< data address, for Kind::Watchpoint
    uint64_t cycles = 0;       ///< cumulative machine cycles
};

class DebugTarget : public DebugHook
{
  public:
    /** Attaches itself as @p m's debug hook. */
    explicit DebugTarget(Machine &m);
    ~DebugTarget() override;

    DebugTarget(const DebugTarget &) = delete;
    DebugTarget &operator=(const DebugTarget &) = delete;

    Machine &machine() { return mach; }
    const Machine &machine() const { return mach; }

    // --- Registers in gdb's AVR layout -------------------------------

    /** r0..r31, SREG, SP (2 bytes LE), PC (4 bytes LE, byte addr). */
    static constexpr size_t kRegBlockLen = 39;
    /** gdb register numbers: 0..31 GPRs, 32 SREG, 33 SP, 34 PC. */
    static constexpr unsigned kNumRegs = 35;

    std::array<uint8_t, kRegBlockLen> readRegisters() const;
    void writeRegisters(const std::array<uint8_t, kRegBlockLen> &block);

    /** Size in bytes of gdb register @p regno (0 if out of range). */
    static size_t regSize(unsigned regno);
    std::vector<uint8_t> readRegister(unsigned regno) const;
    bool writeRegister(unsigned regno,
                       const std::vector<uint8_t> &bytes);

    // --- gdb composite address space ---------------------------------

    /**
     * Read/write @p len bytes at gdb address @p addr. Flash reads
     * beyond the device return erased 0xff; writes outside writable
     * ranges fail. Flash writes go through the decode-cache refresh,
     * so a patched instruction executes as patched.
     */
    bool readMemory(uint32_t addr, size_t len,
                    std::vector<uint8_t> &out) const;
    bool writeMemory(uint32_t addr,
                     const std::vector<uint8_t> &bytes);

    // --- Breakpoints and watchpoints ---------------------------------

    /** @p addr is a flash *byte* address (gdb Z0 convention). */
    bool setBreakpoint(uint32_t addr);
    bool clearBreakpoint(uint32_t addr);

    /**
     * @p addr may be a gdb data-space address (0x800000-based) or a
     * raw data address; @p len bytes are covered. Read/Access kinds
     * match loads, Write/Access match stores (I/O port traffic via
     * IN/OUT/SBI/CBI is architecturally register traffic and is not
     * watched).
     */
    bool setWatchpoint(WatchKind kind, uint32_t addr, uint16_t len);
    bool clearWatchpoint(WatchKind kind, uint32_t addr, uint16_t len);

    // --- Execution control -------------------------------------------

    /** Execute exactly one instruction (reference path). */
    StopInfo stepOne();

    /**
     * Continue for at most @p slice_cycles. Returns Kind::Running
     * when the slice expired with the program still going; poll the
     * transport, then call resume() again to continue the same run
     * (breakpoint step-over is only applied on the first slice).
     */
    StopInfo resume(uint64_t slice_cycles = 200000);

    /** Abandon an in-flight resume: report an interrupt stop. */
    StopInfo interrupt();

    /**
     * Arrange the machine as Machine::call() would, without running:
     * push the exit sentinel and point PC at @p entry_word_addr.
     */
    void setupCall(uint32_t entry_word_addr);

    // --- DebugHook ---------------------------------------------------

    bool wantsStops() const override;
    bool onBoundary(uint32_t pc, uint64_t cycles) override;
    void onLoad(uint16_t addr) override;
    void onStore(uint16_t addr) override;

  private:
    struct Watch
    {
        WatchKind kind;
        uint16_t addr;
        uint16_t len;
    };

    StopInfo stopFor(StopInfo::Kind kind, uint8_t signal) const;
    StopInfo mapTrap(const Trap &trap) const;
    void matchWatch(uint16_t addr, bool is_store);

    uint8_t eepromByte(uint32_t off) const
    {
        return off < eeprom.size() ? eeprom[off] : 0xff;
    }

    Machine &mach;
    std::unordered_set<uint32_t> breakWords;
    std::vector<Watch> watches;
    /** Debugger-visible EEPROM; grown on first write, reads as 0xff. */
    std::vector<uint8_t> eeprom;

    // Continue-state across resume() slices.
    bool inFlight = false;  ///< a continue is mid-run (sliced)
    bool skipArmed = false; ///< skip a breakpoint at skipPc once
    uint32_t skipPc = 0;
    bool watchHit = false;  ///< a watched access retired; stop at the
                            ///< next instruction boundary
    WatchKind hitKind = WatchKind::Write;
    uint16_t hitAddr = 0;
};

} // namespace jaavr

#endif // JAAVR_DEBUG_TARGET_HH
