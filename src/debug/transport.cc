#include "debug/transport.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "support/logging.hh"

namespace jaavr
{

/* ---- LoopbackTransport ----------------------------------------- */

bool
LoopbackTransport::poll(std::string &out)
{
    out += toServer;
    toServer.clear();
    return open;
}

void
LoopbackTransport::send(std::string_view bytes)
{
    if (open)
        toClient.append(bytes.data(), bytes.size());
}

void
LoopbackTransport::clientSend(std::string_view bytes)
{
    if (open)
        toServer.append(bytes.data(), bytes.size());
}

std::string
LoopbackTransport::clientTake()
{
    std::string out = std::move(toClient);
    toClient.clear();
    return out;
}

/* ---- TcpServerTransport ---------------------------------------- */

namespace
{

void
setNonBlocking(int fd)
{
    int flags = fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

} // anonymous namespace

TcpServerTransport::~TcpServerTransport()
{
    shutdown();
}

bool
TcpServerTransport::listen(uint16_t port)
{
    shutdown();
    listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd < 0)
        return false;
    int one = 1;
    ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0 ||
        ::listen(listenFd, 1) < 0) {
        ::close(listenFd);
        listenFd = -1;
        return false;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(listenFd, reinterpret_cast<sockaddr *>(&addr),
                      &len) == 0)
        boundPort = ntohs(addr.sin_port);
    setNonBlocking(listenFd);
    return true;
}

bool
TcpServerTransport::acceptClient()
{
    if (clientFd >= 0)
        return true;
    if (listenFd < 0)
        return false;
    int fd = ::accept(listenFd, nullptr, nullptr);
    if (fd < 0)
        return false;
    setNonBlocking(fd);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    clientFd = fd;
    return true;
}

bool
TcpServerTransport::poll(std::string &out)
{
    if (clientFd < 0)
        return false;
    char buf[4096];
    for (;;) {
        ssize_t n = ::recv(clientFd, buf, sizeof(buf), 0);
        if (n > 0) {
            out.append(buf, static_cast<size_t>(n));
            continue;
        }
        if (n == 0) { // orderly shutdown by gdb
            close();
            return false;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
            return true;
        close();
        return false;
    }
}

void
TcpServerTransport::send(std::string_view bytes)
{
    size_t off = 0;
    while (clientFd >= 0 && off < bytes.size()) {
        ssize_t n = ::send(clientFd, bytes.data() + off,
                           bytes.size() - off, MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<size_t>(n);
            continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
            continue; // replies are tiny; spin until the buffer drains
        close();
        return;
    }
}

void
TcpServerTransport::close()
{
    if (clientFd >= 0) {
        ::close(clientFd);
        clientFd = -1;
    }
}

void
TcpServerTransport::shutdown()
{
    close();
    if (listenFd >= 0) {
        ::close(listenFd);
        listenFd = -1;
    }
}

} // namespace jaavr
