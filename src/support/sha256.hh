/**
 * @file
 * SHA-256 (FIPS 180-4). Used by the ECDSA layer and the examples to
 * hash messages; self-contained, no dependencies.
 */

#ifndef JAAVR_SUPPORT_SHA256_HH
#define JAAVR_SUPPORT_SHA256_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace jaavr
{

class Sha256
{
  public:
    static constexpr size_t digestSize = 32;

    Sha256();

    /** Absorb @p len bytes. */
    void update(const uint8_t *data, size_t len);
    void update(const std::vector<uint8_t> &data)
    {
        update(data.data(), data.size());
    }
    void update(const std::string &s)
    {
        update(reinterpret_cast<const uint8_t *>(s.data()), s.size());
    }

    /** Finish and return the digest; the object must not be reused. */
    std::array<uint8_t, digestSize> finish();

    /** One-shot convenience. */
    static std::array<uint8_t, digestSize>
    digest(const std::string &message);
    static std::array<uint8_t, digestSize>
    digest(const std::vector<uint8_t> &message);

  private:
    void processBlock(const uint8_t *block);

    std::array<uint32_t, 8> h;
    std::array<uint8_t, 64> buffer;
    size_t bufferLen;
    uint64_t totalLen;
    bool finished;
};

/**
 * HMAC-SHA-256 (RFC 2104) of @p message under @p key. Keys longer
 * than the 64-byte block are hashed down first, per the RFC. Used by
 * the network session layer to authenticate frames under the
 * ECDH-derived session key.
 */
std::array<uint8_t, Sha256::digestSize>
hmacSha256(const std::vector<uint8_t> &key,
           const std::vector<uint8_t> &message);

} // namespace jaavr

#endif // JAAVR_SUPPORT_SHA256_HH
