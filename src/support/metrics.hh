/**
 * @file
 * MetricsRegistry: named, labeled counters, gauges and histograms for
 * the unified telemetry layer (DESIGN.md, "Telemetry & reporting").
 *
 * The registry is a passive container: producers (the Machine, the
 * MAC unit, the fault campaign, benches) create or look up metrics by
 * (name, label set) and bump them; consumers take snapshots — a
 * human-readable text table, or JSON lines through the same escaping
 * rules as every other emitter (support/json.hh) so downstream
 * tooling (tools/jaavr_report.cc) can parse them back.
 *
 * Metrics are identified by a name plus an ordered list of
 * key="value" labels; the same (name, labels) pair always returns the
 * same instance. Iteration order is deterministic (lexicographic by
 * name, then by serialized labels), so two identical runs produce
 * byte-identical snapshots — the property the VCD writer and the
 * regression gate rely on throughout this subsystem.
 *
 * This is intentionally not an atomics-based concurrent registry: the
 * ISS is single-threaded and the hot path never touches the registry
 * (metrics are published from retired statistics, not per
 * instruction), so plain counters keep the observer cost zero.
 */

#ifndef JAAVR_SUPPORT_METRICS_HH
#define JAAVR_SUPPORT_METRICS_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "support/json.hh"

namespace jaavr
{

/** Ordered key/value label set attached to a metric instance. */
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/** Monotonically increasing integer metric. */
class Counter
{
  public:
    void inc(uint64_t delta = 1) { val += delta; }
    uint64_t value() const { return val; }

  private:
    uint64_t val = 0;
};

/** Last-value metric (levels: depth, SP, rates, ratios). */
class Gauge
{
  public:
    void set(double v) { val = v; }
    double value() const { return val; }

  private:
    double val = 0;
};

/**
 * Fixed-bucket histogram: observations are counted into the first
 * bucket whose upper bound is >= the value (the last bucket is the
 * implicit +inf overflow), plus a running count and sum.
 */
class Histogram
{
  public:
    Histogram() = default;
    explicit Histogram(std::vector<double> upper_bounds);

    void observe(double v, uint64_t weight = 1);

    uint64_t count() const { return total; }
    double sum() const { return sumV; }
    double mean() const { return total ? sumV / double(total) : 0.0; }
    const std::vector<double> &bounds() const { return ub; }
    /** Observations in bucket @p i (ub.size() == overflow bucket). */
    uint64_t bucketCount(size_t i) const { return counts[i]; }

    /**
     * Bucket-interpolated percentile estimate for @p p in [0, 100]:
     * the value below which p percent of the observations fall,
     * linearly interpolated inside the bucket that crosses the rank
     * (Prometheus histogram_quantile semantics). Observations in the
     * overflow bucket clamp to the largest finite bound; an empty
     * histogram returns 0.
     */
    double percentile(double p) const;

  private:
    std::vector<double> ub;       ///< ascending upper bounds
    std::vector<uint64_t> counts; ///< ub.size() + 1 (overflow last)
    uint64_t total = 0;
    double sumV = 0;
};

class MetricsRegistry
{
  public:
    /**
     * Look up or create the counter @p name with @p labels. The
     * returned reference stays valid for the registry's lifetime.
     */
    Counter &counter(const std::string &name,
                     const MetricLabels &labels = {});

    Gauge &gauge(const std::string &name, const MetricLabels &labels = {});

    /**
     * Look up or create a histogram; @p upper_bounds is only applied
     * on creation (later calls with different bounds reuse the
     * existing buckets).
     */
    Histogram &histogram(const std::string &name,
                         std::vector<double> upper_bounds,
                         const MetricLabels &labels = {});

    /** Number of registered metric instances (all three kinds). */
    size_t size() const;

    /** Drop every registered metric. */
    void clear();

    /**
     * Human-readable snapshot, one line per metric instance:
     *   counter   mac_alg2_triggers{mode="ise"} 200
     *   histogram inst_cycles{mode="ise"} count=552 sum=552 ...
     * Deterministically ordered.
     */
    std::string textSnapshot() const;

    /**
     * One JsonLine per metric instance: {"metric":..,"type":..,
     * "value":..} with the labels flattened into string fields and
     * every field of @p stamp prepended (run metadata). Histograms
     * carry count/sum/mean plus one "le_<bound>" field per bucket.
     */
    std::vector<JsonLine> jsonSnapshot(const JsonLine &stamp = {}) const;

    /** Append jsonSnapshot() to the JSON-lines file @p path. */
    bool writeJsonLines(const std::string &path,
                        const JsonLine &stamp = {}) const;

  private:
    /** Serialized '{k="v",...}' suffix; "" for label-free metrics. */
    static std::string labelKey(const MetricLabels &labels);

    struct Key
    {
        std::string name;
        std::string labels; ///< serialized, for deterministic order

        bool operator<(const Key &o) const
        {
            return name != o.name ? name < o.name : labels < o.labels;
        }
    };

    // node-based maps: references stay valid across inserts.
    std::map<Key, Counter> counters;
    std::map<Key, Gauge> gauges;
    std::map<Key, Histogram> histograms;
    std::map<Key, MetricLabels> labelSets; ///< for JSON flattening
};

} // namespace jaavr

#endif // JAAVR_SUPPORT_METRICS_HH
