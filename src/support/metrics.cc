#include "support/metrics.hh"

#include <algorithm>

#include "support/logging.hh"

namespace jaavr
{

Histogram::Histogram(std::vector<double> upper_bounds)
    : ub(std::move(upper_bounds))
{
    std::sort(ub.begin(), ub.end());
    counts.assign(ub.size() + 1, 0);
}

void
Histogram::observe(double v, uint64_t weight)
{
    if (counts.empty())
        counts.assign(1, 0);
    size_t i = 0;
    while (i < ub.size() && v > ub[i])
        i++;
    counts[i] += weight;
    total += weight;
    sumV += v * double(weight);
}

double
Histogram::percentile(double p) const
{
    if (total == 0 || ub.empty())
        return 0;
    if (p < 0)
        p = 0;
    if (p > 100)
        p = 100;
    double rank = p / 100.0 * double(total);
    uint64_t seen = 0;
    for (size_t i = 0; i < ub.size(); i++) {
        uint64_t n = counts[i];
        if (n && double(seen + n) >= rank) {
            double lo = i ? ub[i - 1] : 0.0;
            double frac = n ? (rank - double(seen)) / double(n) : 1.0;
            if (frac < 0)
                frac = 0;
            return lo + frac * (ub[i] - lo);
        }
        seen += n;
    }
    // Rank fell into the +inf overflow bucket: clamp to the largest
    // finite bound (the histogram cannot resolve beyond it).
    return ub.back();
}

std::string
MetricsRegistry::labelKey(const MetricLabels &labels)
{
    if (labels.empty())
        return "";
    std::string out = "{";
    for (size_t i = 0; i < labels.size(); i++) {
        out += (i ? "," : "") + labels[i].first + "=\"" +
               labels[i].second + "\"";
    }
    return out + "}";
}

Counter &
MetricsRegistry::counter(const std::string &name, const MetricLabels &labels)
{
    Key k{name, labelKey(labels)};
    labelSets.emplace(k, labels);
    return counters[k];
}

Gauge &
MetricsRegistry::gauge(const std::string &name, const MetricLabels &labels)
{
    Key k{name, labelKey(labels)};
    labelSets.emplace(k, labels);
    return gauges[k];
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           std::vector<double> upper_bounds,
                           const MetricLabels &labels)
{
    Key k{name, labelKey(labels)};
    labelSets.emplace(k, labels);
    auto it = histograms.find(k);
    if (it == histograms.end())
        it = histograms.emplace(k, Histogram(std::move(upper_bounds)))
                 .first;
    return it->second;
}

size_t
MetricsRegistry::size() const
{
    return counters.size() + gauges.size() + histograms.size();
}

void
MetricsRegistry::clear()
{
    counters.clear();
    gauges.clear();
    histograms.clear();
    labelSets.clear();
}

std::string
MetricsRegistry::textSnapshot() const
{
    std::string out;
    for (const auto &[k, c] : counters)
        out += csprintf("counter   %s%s %llu\n", k.name.c_str(),
                        k.labels.c_str(),
                        static_cast<unsigned long long>(c.value()));
    for (const auto &[k, g] : gauges)
        out += csprintf("gauge     %s%s %g\n", k.name.c_str(),
                        k.labels.c_str(), g.value());
    for (const auto &[k, h] : histograms) {
        out += csprintf("histogram %s%s count=%llu sum=%g mean=%g",
                        k.name.c_str(), k.labels.c_str(),
                        static_cast<unsigned long long>(h.count()),
                        h.sum(), h.mean());
        for (size_t i = 0; i < h.bounds().size(); i++)
            out += csprintf(" le_%g=%llu", h.bounds()[i],
                            static_cast<unsigned long long>(
                                h.bucketCount(i)));
        out += csprintf(" le_inf=%llu\n",
                        static_cast<unsigned long long>(
                            h.bucketCount(h.bounds().size())));
    }
    return out;
}

std::vector<JsonLine>
MetricsRegistry::jsonSnapshot(const JsonLine &stamp) const
{
    std::vector<JsonLine> out;
    auto base = [&](const Key &k, const char *type) {
        JsonLine line = stamp;
        line.str("metric", k.name).str("type", type);
        auto it = labelSets.find(k);
        if (it != labelSets.end())
            for (const auto &[lk, lv] : it->second)
                line.str(lk, lv);
        return line;
    };
    for (const auto &[k, c] : counters)
        out.push_back(base(k, "counter").num("value", c.value()));
    for (const auto &[k, g] : gauges)
        out.push_back(base(k, "gauge").num("value", g.value()));
    for (const auto &[k, h] : histograms) {
        JsonLine line = base(k, "histogram")
                            .num("count", h.count())
                            .num("sum", h.sum())
                            .num("mean", h.mean());
        for (size_t i = 0; i < h.bounds().size(); i++)
            line.num(csprintf("le_%g", h.bounds()[i]), h.bucketCount(i));
        line.num("le_inf", h.bucketCount(h.bounds().size()));
        out.push_back(line);
    }
    return out;
}

bool
MetricsRegistry::writeJsonLines(const std::string &path,
                                const JsonLine &stamp) const
{
    bool ok = true;
    for (const JsonLine &line : jsonSnapshot(stamp))
        ok = appendJsonLine(path, line) && ok;
    return ok;
}

} // namespace jaavr
