/**
 * @file
 * Error-reporting and status-message helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a bug in this library), fatal() is for conditions caused
 * by the caller or the environment (bad arguments, malformed assembly,
 * unsatisfiable configuration). warn()/inform() never terminate.
 */

#ifndef JAAVR_SUPPORT_LOGGING_HH
#define JAAVR_SUPPORT_LOGGING_HH

#include <cstdarg>
#include <string>

namespace jaavr
{

/** Print a formatted message and abort(). Use for internal bugs only. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a formatted message and exit(1). Use for user-caused errors. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a non-fatal warning to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace jaavr

#endif // JAAVR_SUPPORT_LOGGING_HH
