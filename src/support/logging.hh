/**
 * @file
 * Error-reporting and status-message helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a bug in this library), fatal() is for conditions caused
 * by the caller or the environment (bad arguments, malformed assembly,
 * unsatisfiable configuration). warn()/inform() never terminate.
 */

#ifndef JAAVR_SUPPORT_LOGGING_HH
#define JAAVR_SUPPORT_LOGGING_HH

#include <cstdarg>
#include <string>

namespace jaavr
{

/**
 * Verbosity threshold for the non-terminating helpers, from the
 * JAAVR_LOG_LEVEL environment variable ("quiet"/"error"/"warn"/
 * "info" or 0..3; default Info). panic()/fatal() always print.
 */
enum class LogLevel : int
{
    Quiet = 0, ///< nothing below fatal
    Error = 1, ///< reserved (no error-severity helper yet)
    Warn = 2,  ///< warn() prints, inform() is silent
    Info = 3,  ///< everything prints (default)
};

/** The process log level, latched from the environment on first use. */
LogLevel logLevel();

/** Print a formatted message and abort(). Use for internal bugs only. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a formatted message and exit(1). Use for user-caused errors. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a non-fatal warning to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace jaavr

#endif // JAAVR_SUPPORT_LOGGING_HH
