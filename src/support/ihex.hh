/**
 * @file
 * Intel HEX reader/writer.
 *
 * Used by the debug subsystem (`jaavr-gdb --load`) to serve external
 * firmware images and by the avrgen harnesses to export assembled
 * flash images. The parser is strict but never aborts: every
 * malformed record (bad start code, odd digit count, non-hex digit,
 * length mismatch, checksum error, unknown record type, data after
 * EOF) is reported through the error string so a server feeding it
 * untrusted input can reject the file gracefully.
 *
 * Supported record types: 00 (data), 01 (EOF), 02 (extended segment
 * address), 03 (start segment address, validated and ignored),
 * 04 (extended linear address), 05 (start linear address, validated
 * and ignored).
 */

#ifndef JAAVR_SUPPORT_IHEX_HH
#define JAAVR_SUPPORT_IHEX_HH

#include <cstdint>
#include <string>
#include <vector>

namespace jaavr
{

/** One contiguous run of bytes at an absolute byte address. */
struct IhexChunk
{
    uint32_t addr = 0;
    std::vector<uint8_t> bytes;

    uint32_t end() const
    {
        return addr + static_cast<uint32_t>(bytes.size());
    }

    bool operator==(const IhexChunk &) const = default;
};

/**
 * A parsed (or to-be-written) image: sorted, coalesced, disjoint
 * chunks of the byte address space. Overlapping add()s are resolved
 * last-writer-wins, matching what flashing the records in file order
 * would produce.
 */
struct IhexImage
{
    std::vector<IhexChunk> chunks;

    bool empty() const { return chunks.empty(); }

    /** Lowest / one-past-highest populated byte address (0 if empty). */
    uint32_t minAddr() const;
    uint32_t endAddr() const;

    /** Total populated bytes across all chunks. */
    size_t byteCount() const;

    /** Merge @p bytes at @p addr (last write wins on overlap). */
    void add(uint32_t addr, const std::vector<uint8_t> &bytes);

    /**
     * Dense byte image over [minAddr(), endAddr()), gaps filled with
     * @p fill (0xff = erased flash).
     */
    std::vector<uint8_t> flatten(uint8_t fill = 0xff) const;

    /**
     * The image as little-endian 16-bit flash words starting at word
     * address minAddr() / 2; a leading odd byte and gaps are padded
     * with @p fill. Pair with loadWordAddr() for Machine::loadProgram.
     */
    std::vector<uint16_t> words(uint8_t fill = 0xff) const;

    /** Flash word address words() starts at. */
    uint32_t loadWordAddr() const { return minAddr() / 2; }
};

/**
 * Parse Intel HEX @p text into @p out. Returns false on malformed
 * input with a line-numbered description in @p err (out is left in an
 * unspecified but valid state). Never aborts.
 */
bool parseIhex(const std::string &text, IhexImage &out,
               std::string *err = nullptr);

/**
 * Serialize @p img as Intel HEX with @p record_len data bytes per
 * record, emitting type-04 extended-linear-address records as needed
 * and a terminating EOF record.
 */
std::string writeIhex(const IhexImage &img, size_t record_len = 16);

} // namespace jaavr

#endif // JAAVR_SUPPORT_IHEX_HH
