/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xedb88320) for the
 * network frame codec. A CRC catches every single-bit error and any
 * burst up to 32 bits, which is exactly the damage model the lossy
 * link simulates; anything that slips past it must be caught by the
 * session-layer MAC. Header-only: a lazily built 256-entry table
 * shared by all users.
 */

#ifndef JAAVR_SUPPORT_CRC32_HH
#define JAAVR_SUPPORT_CRC32_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace jaavr
{

namespace detail
{

inline const std::array<uint32_t, 256> &
crc32Table()
{
    static const std::array<uint32_t, 256> table = [] {
        std::array<uint32_t, 256> t{};
        for (uint32_t i = 0; i < 256; i++) {
            uint32_t c = i;
            for (int k = 0; k < 8; k++)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table;
}

} // namespace detail

/** Incrementally extend @p crc (start from 0) with @p len bytes. */
inline uint32_t
crc32Update(uint32_t crc, const uint8_t *data, size_t len)
{
    const auto &table = detail::crc32Table();
    crc = ~crc;
    for (size_t i = 0; i < len; i++)
        crc = table[(crc ^ data[i]) & 0xff] ^ (crc >> 8);
    return ~crc;
}

/** One-shot CRC-32 of @p len bytes at @p data. */
inline uint32_t
crc32(const uint8_t *data, size_t len)
{
    return crc32Update(0, data, len);
}

} // namespace jaavr

#endif // JAAVR_SUPPORT_CRC32_HH
