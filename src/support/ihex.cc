#include "support/ihex.hh"

#include <algorithm>

#include "support/hex.hh"
#include "support/logging.hh"

namespace jaavr
{

uint32_t
IhexImage::minAddr() const
{
    return chunks.empty() ? 0 : chunks.front().addr;
}

uint32_t
IhexImage::endAddr() const
{
    return chunks.empty() ? 0 : chunks.back().end();
}

size_t
IhexImage::byteCount() const
{
    size_t n = 0;
    for (const IhexChunk &c : chunks)
        n += c.bytes.size();
    return n;
}

void
IhexImage::add(uint32_t addr, const std::vector<uint8_t> &bytes)
{
    if (bytes.empty())
        return;
    // Carve the new range out of any existing chunk (last write
    // wins), then splice the bytes in, coalescing with neighbours.
    uint32_t lo = addr;
    uint32_t hi = addr + static_cast<uint32_t>(bytes.size());
    std::vector<IhexChunk> next;
    IhexChunk fresh{addr, bytes};
    for (IhexChunk &c : chunks) {
        if (c.end() <= lo || c.addr >= hi) {
            next.push_back(std::move(c));
            continue;
        }
        if (c.addr < lo) {
            IhexChunk head{c.addr, {c.bytes.begin(),
                                    c.bytes.begin() + (lo - c.addr)}};
            next.push_back(std::move(head));
        }
        if (c.end() > hi) {
            IhexChunk tail{hi, {c.bytes.begin() + (hi - c.addr),
                                c.bytes.end()}};
            next.push_back(std::move(tail));
        }
    }
    next.push_back(std::move(fresh));
    std::sort(next.begin(), next.end(),
              [](const IhexChunk &a, const IhexChunk &b) {
                  return a.addr < b.addr;
              });
    chunks.clear();
    for (IhexChunk &c : next) {
        if (!chunks.empty() && chunks.back().end() == c.addr)
            chunks.back().bytes.insert(chunks.back().bytes.end(),
                                       c.bytes.begin(), c.bytes.end());
        else
            chunks.push_back(std::move(c));
    }
}

std::vector<uint8_t>
IhexImage::flatten(uint8_t fill) const
{
    std::vector<uint8_t> out(endAddr() - minAddr(), fill);
    for (const IhexChunk &c : chunks)
        std::copy(c.bytes.begin(), c.bytes.end(),
                  out.begin() + (c.addr - minAddr()));
    return out;
}

std::vector<uint16_t>
IhexImage::words(uint8_t fill) const
{
    if (empty())
        return {};
    uint32_t base = minAddr() & ~1u;
    std::vector<uint8_t> dense((endAddr() - base + 1) & ~1u, fill);
    for (const IhexChunk &c : chunks)
        std::copy(c.bytes.begin(), c.bytes.end(),
                  dense.begin() + (c.addr - base));
    std::vector<uint16_t> out(dense.size() / 2);
    for (size_t i = 0; i < out.size(); i++)
        out[i] = static_cast<uint16_t>(dense[2 * i]) |
                 (static_cast<uint16_t>(dense[2 * i + 1]) << 8);
    return out;
}

namespace
{

void
setErr(std::string *err, unsigned line, const std::string &what)
{
    if (err)
        *err = csprintf("line %u: %s", line, what.c_str());
}

/** Decode @p n hex digits at @p s; returns -1 on a non-hex digit. */
int64_t
hexField(const char *s, size_t n)
{
    int64_t v = 0;
    for (size_t i = 0; i < n; i++) {
        int d = hexDigit(s[i]);
        if (d < 0)
            return -1;
        v = (v << 4) | d;
    }
    return v;
}

} // anonymous namespace

bool
parseIhex(const std::string &text, IhexImage &out, std::string *err)
{
    out.chunks.clear();
    uint32_t base = 0; // extended segment/linear offset
    bool sawEof = false;
    unsigned lineNo = 0;
    size_t pos = 0;
    while (pos < text.size()) {
        size_t nl = text.find('\n', pos);
        if (nl == std::string::npos)
            nl = text.size();
        std::string line = text.substr(pos, nl - pos);
        pos = nl + 1;
        lineNo++;
        while (!line.empty() &&
               (line.back() == '\r' || line.back() == ' ' ||
                line.back() == '\t'))
            line.pop_back();
        size_t first = line.find_first_not_of(" \t");
        if (first == std::string::npos)
            continue; // blank line
        line.erase(0, first);
        if (line[0] != ':') {
            setErr(err, lineNo, "record does not start with ':'");
            return false;
        }
        if (sawEof) {
            setErr(err, lineNo, "record after EOF record");
            return false;
        }
        if (line.size() % 2 != 1) {
            // ':' plus an odd number of hex digits.
            setErr(err, lineNo, "odd number of hex digits");
            return false;
        }
        if (line.size() < 1 + 10) {
            setErr(err, lineNo, "record too short");
            return false;
        }
        const char *p = line.c_str() + 1;
        size_t nbytes = (line.size() - 1) / 2;
        int64_t len = hexField(p, 2);
        int64_t addr = hexField(p + 2, 4);
        int64_t type = hexField(p + 6, 2);
        if (len < 0 || addr < 0 || type < 0) {
            setErr(err, lineNo, "non-hex digit in record header");
            return false;
        }
        if (nbytes != static_cast<size_t>(len) + 5) {
            setErr(err, lineNo,
                   csprintf("record length %lld does not match %zu "
                            "data bytes",
                            static_cast<long long>(len), nbytes - 5));
            return false;
        }
        std::vector<uint8_t> data(len);
        unsigned sum =
            static_cast<unsigned>(len + (addr >> 8) + addr + type);
        for (int64_t i = 0; i < len; i++) {
            int64_t b = hexField(p + 8 + 2 * i, 2);
            if (b < 0) {
                setErr(err, lineNo, "non-hex digit in record data");
                return false;
            }
            data[i] = static_cast<uint8_t>(b);
            sum += static_cast<unsigned>(b);
        }
        int64_t check = hexField(p + 8 + 2 * len, 2);
        if (check < 0) {
            setErr(err, lineNo, "non-hex digit in checksum");
            return false;
        }
        if (((sum + check) & 0xff) != 0) {
            setErr(err, lineNo,
                   csprintf("checksum mismatch (expected 0x%02x, got "
                            "0x%02x)",
                            static_cast<unsigned>(-sum) & 0xff,
                            static_cast<unsigned>(check)));
            return false;
        }
        switch (type) {
          case 0x00: // data
            out.add(base + static_cast<uint32_t>(addr), data);
            break;
          case 0x01: // EOF
            if (len != 0) {
                setErr(err, lineNo, "EOF record with data");
                return false;
            }
            sawEof = true;
            break;
          case 0x02: // extended segment address
          case 0x04: // extended linear address
            if (len != 2) {
                setErr(err, lineNo, "address record length is not 2");
                return false;
            }
            base = (static_cast<uint32_t>(data[0]) << 8 | data[1])
                   << (type == 0x02 ? 4 : 16);
            break;
          case 0x03: // start segment address (CS:IP) — ignored
          case 0x05: // start linear address — ignored
            if (len != 4) {
                setErr(err, lineNo, "start record length is not 4");
                return false;
            }
            break;
          default:
            setErr(err, lineNo,
                   csprintf("unknown record type 0x%02llx",
                            static_cast<unsigned long long>(type)));
            return false;
        }
    }
    if (!sawEof) {
        setErr(err, lineNo, "missing EOF record");
        return false;
    }
    return true;
}

namespace
{

void
emitRecord(std::string &out, uint8_t type, uint16_t addr,
           const uint8_t *data, size_t len)
{
    unsigned sum = static_cast<unsigned>(len) + (addr >> 8) +
                   (addr & 0xff) + type;
    out += csprintf(":%02zX%04X%02X", len, addr, type);
    for (size_t i = 0; i < len; i++) {
        out += csprintf("%02X", data[i]);
        sum += data[i];
    }
    out += csprintf("%02X\n", static_cast<unsigned>(-sum) & 0xff);
}

} // anonymous namespace

std::string
writeIhex(const IhexImage &img, size_t record_len)
{
    if (record_len == 0 || record_len > 255)
        record_len = 16;
    std::string out;
    uint32_t base = 0;
    bool baseEmitted = false;
    for (const IhexChunk &c : img.chunks) {
        uint32_t a = c.addr;
        size_t off = 0;
        while (off < c.bytes.size()) {
            uint32_t hi = a >> 16;
            if (!baseEmitted || hi != base) {
                uint8_t ext[2] = {static_cast<uint8_t>(hi >> 8),
                                  static_cast<uint8_t>(hi)};
                emitRecord(out, 0x04, 0, ext, 2);
                base = hi;
                baseEmitted = true;
            }
            // Stay inside the current 64 KiB page.
            size_t n = std::min({record_len, c.bytes.size() - off,
                                 static_cast<size_t>(0x10000 -
                                                     (a & 0xffff))});
            emitRecord(out, 0x00, static_cast<uint16_t>(a),
                       c.bytes.data() + off, n);
            a += static_cast<uint32_t>(n);
            off += n;
        }
    }
    out += ":00000001FF\n";
    return out;
}

} // namespace jaavr
