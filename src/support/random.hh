/**
 * @file
 * Deterministic, seedable pseudo-random generator for tests and
 * benchmark workload generation. Not cryptographically secure; the
 * library's crypto examples document this explicitly.
 */

#ifndef JAAVR_SUPPORT_RANDOM_HH
#define JAAVR_SUPPORT_RANDOM_HH

#include <cstdint>

namespace jaavr
{

/**
 * xorshift128+ generator, seeded through SplitMix64. Deterministic
 * across platforms so tests and benchmark workloads are reproducible.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        uint64_t state = seed;
        s0 = splitMix64(state);
        s1 = splitMix64(state);
        if (s0 == 0 && s1 == 0)
            s1 = 1;
    }

    /** Next 64 uniformly random bits. */
    uint64_t
    next64()
    {
        uint64_t x = s0;
        const uint64_t y = s1;
        s0 = y;
        x ^= x << 23;
        s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1 + y;
    }

    /** Next 32 uniformly random bits. */
    uint32_t next32() { return static_cast<uint32_t>(next64() >> 32); }

    /** Uniform value in [0, bound). bound must be non-zero. */
    uint64_t
    below(uint64_t bound)
    {
        // Rejection sampling to avoid modulo bias.
        uint64_t threshold = (0 - bound) % bound;
        for (;;) {
            uint64_t r = next64();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Bernoulli(1/2). */
    bool flip() { return next64() & 1; }

  private:
    /** One SplitMix64 step; advances @p state and returns the output. */
    static uint64_t
    splitMix64(uint64_t &state)
    {
        uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    uint64_t s0 = 0, s1 = 0;
};

} // namespace jaavr

#endif // JAAVR_SUPPORT_RANDOM_HH
