#include "support/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace jaavr
{

namespace
{

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap2);
    va_end(ap2);
    if (n < 0)
        return "<format error>";
    std::vector<char> buf(n + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), n);
}

void
emit(const char *tag, const char *fmt, va_list ap)
{
    std::string msg = vformat(fmt, ap);
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}

} // anonymous namespace

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("info", fmt, ap);
    va_end(ap);
}

std::string
csprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}

} // namespace jaavr
