#include "support/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace jaavr
{

namespace
{

/**
 * Parse JAAVR_LOG_LEVEL once. Accepted values (case-sensitive,
 * numeric synonyms in parentheses): "quiet"/"silent" (0) — only
 * panic/fatal print; "error" (1) — same, reserved for future error
 * severities; "warn" (2) — warn() prints, inform() is silent;
 * "info" (3, the default) — everything prints. CI bench/report jobs
 * set JAAVR_LOG_LEVEL=warn so harmless inform() noise does not bury
 * real diagnostics in the logs.
 */
LogLevel
envLogLevel()
{
    const char *v = std::getenv("JAAVR_LOG_LEVEL");
    if (!v || !*v)
        return LogLevel::Info;
    std::string s(v);
    if (s == "quiet" || s == "silent" || s == "0")
        return LogLevel::Quiet;
    if (s == "error" || s == "1")
        return LogLevel::Error;
    if (s == "warn" || s == "warning" || s == "2")
        return LogLevel::Warn;
    if (s == "info" || s == "3")
        return LogLevel::Info;
    std::fprintf(stderr,
                 "warn: unknown JAAVR_LOG_LEVEL \"%s\" "
                 "(quiet|error|warn|info); defaulting to info\n", v);
    return LogLevel::Info;
}

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap2);
    va_end(ap2);
    if (n < 0)
        return "<format error>";
    std::vector<char> buf(n + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), n);
}

void
emit(const char *tag, const char *fmt, va_list ap)
{
    std::string msg = vformat(fmt, ap);
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}

} // anonymous namespace

LogLevel
logLevel()
{
    // Latched on first use: the level is an environment property of
    // the process, not something to re-read per message. warn() and
    // inform() now run on service worker threads, so the per-call
    // check must stay a relaxed load plus compare — the magic-static
    // guard acquire is pushed into the one-time slow path below
    // (call_once also serializes getenv against concurrent first
    // callers).
    static std::atomic<int> cached{-1};
    static std::once_flag parsed;
    int v = cached.load(std::memory_order_relaxed);
    if (v >= 0)
        return static_cast<LogLevel>(v);
    std::call_once(parsed, [] {
        cached.store(static_cast<int>(envLogLevel()),
                     std::memory_order_relaxed);
    });
    return static_cast<LogLevel>(
        cached.load(std::memory_order_relaxed));
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (logLevel() < LogLevel::Warn)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (logLevel() < LogLevel::Info)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("info", fmt, ap);
    va_end(ap);
}

std::string
csprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}

} // namespace jaavr
