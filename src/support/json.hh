/**
 * @file
 * Minimal JSON emission helpers shared by the benchmark binaries and
 * the ISS profiler: a flat one-object-per-line builder (JSON lines)
 * and an append-to-file helper. Moved here from bench/bench_util.hh
 * so non-bench code (src/avr/profiler.cc) can emit machine-readable
 * records through the same escaping rules.
 *
 * Strings are escaped per RFC 8259: quote, backslash, the short
 * escapes \b \f \n \r \t, and \u00XX for the remaining control
 * characters, so emitted lines always parse as valid JSON.
 */

#ifndef JAAVR_SUPPORT_JSON_HH
#define JAAVR_SUPPORT_JSON_HH

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace jaavr
{

/** Escape @p s for inclusion inside a JSON string literal. */
inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        unsigned char u = static_cast<unsigned char>(c);
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (u < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", u);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * One flat JSON object serialized as a single line. Field order is
 * insertion order; values are strings, integers or doubles (all a
 * trajectory tracker needs).
 */
class JsonLine
{
  public:
    JsonLine &
    str(const std::string &key, const std::string &value)
    {
        fields.push_back("\"" + jsonEscape(key) + "\":\"" +
                         jsonEscape(value) + "\"");
        return *this;
    }

    JsonLine &
    num(const std::string &key, double value)
    {
        // JSON has no inf/nan literals; "%g" would emit them and
        // break every downstream parser, so non-finite values map to
        // null (the lossless-in-spirit choice: "no number here").
        if (!std::isfinite(value)) {
            fields.push_back("\"" + jsonEscape(key) + "\":null");
            return *this;
        }
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.6g", value);
        fields.push_back("\"" + jsonEscape(key) + "\":" + buf);
        return *this;
    }

    JsonLine &
    num(const std::string &key, uint64_t value)
    {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%llu",
                      static_cast<unsigned long long>(value));
        fields.push_back("\"" + jsonEscape(key) + "\":" + buf);
        return *this;
    }

    std::string
    text() const
    {
        std::string out = "{";
        for (size_t i = 0; i < fields.size(); i++)
            out += (i ? "," : "") + fields[i];
        return out + "}";
    }

  private:
    std::vector<std::string> fields;
};

/**
 * One parsed value of a flat JSON-lines record: a string, a number,
 * a boolean, or null. The emitter above only produces strings,
 * numbers and null, but the parser accepts booleans too so
 * hand-written baseline files can use them.
 */
struct JsonValue
{
    enum class Kind : uint8_t { Null, Str, Num, Bool };

    Kind kind = Kind::Null;
    std::string str;
    double num = 0;
    bool boolean = false;

    bool isStr() const { return kind == Kind::Str; }
    bool isNum() const { return kind == Kind::Num; }
};

/** A parsed flat JSON object, insertion order lost (keyed lookup). */
using JsonObject = std::map<std::string, JsonValue>;

namespace detail
{

inline void
skipWs(const std::string &s, size_t &i)
{
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' ||
                            s[i] == '\r' || s[i] == '\n'))
        i++;
}

/** Parse a JSON string literal at s[i] == '"'; false on error. */
inline bool
parseJsonString(const std::string &s, size_t &i, std::string &out)
{
    if (i >= s.size() || s[i] != '"')
        return false;
    i++;
    out.clear();
    while (i < s.size()) {
        char c = s[i];
        if (c == '"') {
            i++;
            return true;
        }
        if (c == '\\') {
            if (i + 1 >= s.size())
                return false;
            char e = s[++i];
            switch (e) {
              case '"':  out += '"'; break;
              case '\\': out += '\\'; break;
              case '/':  out += '/'; break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'n':  out += '\n'; break;
              case 'r':  out += '\r'; break;
              case 't':  out += '\t'; break;
              case 'u': {
                if (i + 4 >= s.size())
                    return false;
                unsigned v = 0;
                for (int k = 0; k < 4; k++) {
                    char h = s[++i];
                    v <<= 4;
                    if (h >= '0' && h <= '9')
                        v |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        v |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        v |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return false;
                }
                // The emitter only escapes C0 controls; decode the
                // Latin-1 range and reject anything wider (no
                // surrogate handling in this flat-record parser).
                if (v > 0xff)
                    return false;
                out += static_cast<char>(v);
                break;
              }
              default:
                return false;
            }
            i++;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            return false; // raw control characters are invalid JSON
        } else {
            out += c;
            i++;
        }
    }
    return false; // unterminated
}

} // namespace detail

/**
 * Parse one flat JSON-lines record (a single object of string /
 * number / bool / null values — exactly what JsonLine emits) into
 * @p out. Returns false, with a human-readable reason in @p err when
 * given, on anything malformed, nested, or trailing. An empty or
 * whitespace-only line is rejected (callers skip blank lines
 * themselves when they are legal).
 */
inline bool
parseJsonLine(const std::string &line, JsonObject &out,
              std::string *err = nullptr)
{
    auto fail = [&](const char *why) {
        if (err)
            *err = why;
        return false;
    };
    out.clear();
    size_t i = 0;
    detail::skipWs(line, i);
    if (i >= line.size() || line[i] != '{')
        return fail("expected '{'");
    i++;
    detail::skipWs(line, i);
    if (i < line.size() && line[i] == '}') {
        i++;
    } else {
        while (true) {
            detail::skipWs(line, i);
            std::string key;
            if (!detail::parseJsonString(line, i, key))
                return fail("bad key string");
            detail::skipWs(line, i);
            if (i >= line.size() || line[i] != ':')
                return fail("expected ':'");
            i++;
            detail::skipWs(line, i);
            JsonValue v;
            if (i >= line.size())
                return fail("missing value");
            char c = line[i];
            if (c == '"') {
                v.kind = JsonValue::Kind::Str;
                if (!detail::parseJsonString(line, i, v.str))
                    return fail("bad value string");
            } else if (line.compare(i, 4, "null") == 0) {
                v.kind = JsonValue::Kind::Null;
                i += 4;
            } else if (line.compare(i, 4, "true") == 0) {
                v.kind = JsonValue::Kind::Bool;
                v.boolean = true;
                i += 4;
            } else if (line.compare(i, 5, "false") == 0) {
                v.kind = JsonValue::Kind::Bool;
                v.boolean = false;
                i += 5;
            } else if (c == '-' || (c >= '0' && c <= '9')) {
                size_t end = i;
                while (end < line.size() &&
                       (line[end] == '-' || line[end] == '+' ||
                        line[end] == '.' || line[end] == 'e' ||
                        line[end] == 'E' ||
                        (line[end] >= '0' && line[end] <= '9')))
                    end++;
                char *stop = nullptr;
                std::string numtext = line.substr(i, end - i);
                v.kind = JsonValue::Kind::Num;
                v.num = std::strtod(numtext.c_str(), &stop);
                if (!stop || *stop != '\0')
                    return fail("bad number");
                i = end;
            } else {
                return fail("unsupported value (nested object/array?)");
            }
            out[key] = v;
            detail::skipWs(line, i);
            if (i < line.size() && line[i] == ',') {
                i++;
                continue;
            }
            if (i < line.size() && line[i] == '}') {
                i++;
                break;
            }
            return fail("expected ',' or '}'");
        }
    }
    detail::skipWs(line, i);
    if (i != line.size())
        return fail("trailing characters");
    return true;
}

/**
 * Append @p line to the JSON-lines file @p path (created on first
 * use). Returns false (with a warning on stderr) if the file cannot
 * be opened — callers still report on the console in that case.
 */
inline bool
appendJsonLine(const std::string &path, const JsonLine &line)
{
    std::FILE *f = std::fopen(path.c_str(), "a");
    if (!f) {
        std::fprintf(stderr, "warn: cannot append to %s\n", path.c_str());
        return false;
    }
    std::fprintf(f, "%s\n", line.text().c_str());
    std::fclose(f);
    return true;
}

} // namespace jaavr

#endif // JAAVR_SUPPORT_JSON_HH
