/**
 * @file
 * Minimal JSON emission helpers shared by the benchmark binaries and
 * the ISS profiler: a flat one-object-per-line builder (JSON lines)
 * and an append-to-file helper. Moved here from bench/bench_util.hh
 * so non-bench code (src/avr/profiler.cc) can emit machine-readable
 * records through the same escaping rules.
 *
 * Strings are escaped per RFC 8259: quote, backslash, the short
 * escapes \b \f \n \r \t, and \u00XX for the remaining control
 * characters, so emitted lines always parse as valid JSON.
 */

#ifndef JAAVR_SUPPORT_JSON_HH
#define JAAVR_SUPPORT_JSON_HH

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace jaavr
{

/** Escape @p s for inclusion inside a JSON string literal. */
inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        unsigned char u = static_cast<unsigned char>(c);
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (u < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", u);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * One flat JSON object serialized as a single line. Field order is
 * insertion order; values are strings, integers or doubles (all a
 * trajectory tracker needs).
 */
class JsonLine
{
  public:
    JsonLine &
    str(const std::string &key, const std::string &value)
    {
        fields.push_back("\"" + jsonEscape(key) + "\":\"" +
                         jsonEscape(value) + "\"");
        return *this;
    }

    JsonLine &
    num(const std::string &key, double value)
    {
        // JSON has no inf/nan literals; "%g" would emit them and
        // break every downstream parser, so non-finite values map to
        // null (the lossless-in-spirit choice: "no number here").
        if (!std::isfinite(value)) {
            fields.push_back("\"" + jsonEscape(key) + "\":null");
            return *this;
        }
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.6g", value);
        fields.push_back("\"" + jsonEscape(key) + "\":" + buf);
        return *this;
    }

    JsonLine &
    num(const std::string &key, uint64_t value)
    {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%llu",
                      static_cast<unsigned long long>(value));
        fields.push_back("\"" + jsonEscape(key) + "\":" + buf);
        return *this;
    }

    std::string
    text() const
    {
        std::string out = "{";
        for (size_t i = 0; i < fields.size(); i++)
            out += (i ? "," : "") + fields[i];
        return out + "}";
    }

  private:
    std::vector<std::string> fields;
};

/**
 * Append @p line to the JSON-lines file @p path (created on first
 * use). Returns false (with a warning on stderr) if the file cannot
 * be opened — callers still report on the console in that case.
 */
inline bool
appendJsonLine(const std::string &path, const JsonLine &line)
{
    std::FILE *f = std::fopen(path.c_str(), "a");
    if (!f) {
        std::fprintf(stderr, "warn: cannot append to %s\n", path.c_str());
        return false;
    }
    std::fprintf(f, "%s\n", line.text().c_str());
    std::fclose(f);
    return true;
}

} // namespace jaavr

#endif // JAAVR_SUPPORT_JSON_HH
