#include "support/hex.hh"

#include "support/logging.hh"

namespace jaavr
{

int
hexDigit(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

std::string
hexEncode(const std::vector<uint8_t> &bytes)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(bytes.size() * 2);
    for (uint8_t b : bytes) {
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0xf]);
    }
    return out;
}

std::vector<uint8_t>
hexDecode(const std::string &hex)
{
    std::string digits;
    digits.reserve(hex.size());

    size_t start = 0;
    if (hex.size() >= 2 && hex[0] == '0' && (hex[1] == 'x' || hex[1] == 'X'))
        start = 2;

    for (size_t i = start; i < hex.size(); i++) {
        char c = hex[i];
        if (c == '_' || c == ' ')
            continue;
        if (hexDigit(c) < 0)
            fatal("hexDecode: invalid character '%c' in \"%s\"",
                  c, hex.c_str());
        digits.push_back(c);
    }

    std::vector<uint8_t> out;
    out.reserve((digits.size() + 1) / 2);
    size_t i = 0;
    if (digits.size() % 2 == 1) {
        out.push_back(hexDigit(digits[0]));
        i = 1;
    }
    for (; i + 1 < digits.size() + 1 && i < digits.size(); i += 2)
        out.push_back((hexDigit(digits[i]) << 4) | hexDigit(digits[i + 1]));
    return out;
}

} // namespace jaavr
