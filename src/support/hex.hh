/**
 * @file
 * Hexadecimal encoding/decoding helpers shared by bigint I/O and tests.
 */

#ifndef JAAVR_SUPPORT_HEX_HH
#define JAAVR_SUPPORT_HEX_HH

#include <cstdint>
#include <string>
#include <vector>

namespace jaavr
{

/** Encode bytes (most-significant first) as a lowercase hex string. */
std::string hexEncode(const std::vector<uint8_t> &bytes);

/**
 * Decode a hex string into bytes (most-significant first).
 * Accepts an optional "0x" prefix, underscores and spaces as
 * separators, and an odd number of digits (implied leading zero).
 * Calls fatal() on any other malformed input.
 */
std::vector<uint8_t> hexDecode(const std::string &hex);

/** Value of one hex digit, or -1 if the character is not a hex digit. */
int hexDigit(char c);

} // namespace jaavr

#endif // JAAVR_SUPPORT_HEX_HH
