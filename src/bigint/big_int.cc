#include "bigint/big_int.hh"

#include "support/logging.hh"

namespace jaavr
{

BigInt::BigInt(int64_t v)
{
    if (v < 0) {
        // Avoid overflow for INT64_MIN by negating in unsigned space.
        mag = BigUInt(~static_cast<uint64_t>(v) + 1);
        neg = true;
    } else {
        mag = BigUInt(static_cast<uint64_t>(v));
        neg = false;
    }
}

int
BigInt::compare(const BigInt &o) const
{
    if (neg != o.neg)
        return neg ? -1 : 1;
    int c = mag.compare(o.mag);
    return neg ? -c : c;
}

BigInt
BigInt::operator+(const BigInt &o) const
{
    if (neg == o.neg)
        return BigInt(mag + o.mag, neg);
    // Opposite signs: subtract the smaller magnitude from the larger.
    int c = mag.compare(o.mag);
    if (c == 0)
        return BigInt();
    if (c > 0)
        return BigInt(mag - o.mag, neg);
    return BigInt(o.mag - mag, o.neg);
}

BigInt
BigInt::operator-(const BigInt &o) const
{
    return *this + (-o);
}

BigInt
BigInt::operator*(const BigInt &o) const
{
    return BigInt(mag * o.mag, neg != o.neg);
}

BigInt
BigInt::operator/(const BigInt &o) const
{
    BigUInt q, r;
    BigUInt::divMod(mag, o.mag, q, r);
    return BigInt(q, neg != o.neg);
}

BigInt
BigInt::operator%(const BigInt &o) const
{
    BigUInt q, r;
    BigUInt::divMod(mag, o.mag, q, r);
    return BigInt(r, neg);
}

BigUInt
BigInt::mod(const BigUInt &m) const
{
    BigUInt r = mag % m;
    if (neg && !r.isZero())
        r = m - r;
    return r;
}

std::string
BigInt::toString() const
{
    std::string s = mag.toHex();
    return neg ? "-" + s : s;
}

} // namespace jaavr
