/**
 * @file
 * Arbitrary-precision unsigned integers on 32-bit limbs.
 *
 * BigUInt is a value type with fixed inline storage (no heap), sized
 * for this project's needs: 160-bit field elements, 320-bit products,
 * and the intermediates of extended-gcd and CM order computations.
 * Exceeding the capacity is a programming error and panics.
 *
 * Limbs are stored little-endian (limb 0 is least significant) and the
 * representation is always normalized: no leading zero limbs, and the
 * value zero has numLimbs() == 0.
 */

#ifndef JAAVR_BIGINT_BIG_UINT_HH
#define JAAVR_BIGINT_BIG_UINT_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "support/random.hh"

namespace jaavr
{

class BigUInt
{
  public:
    /** Inline limb capacity: 1280 bits (covers the RSA-512 products
     *  of the extension benchmark on top of the 160-bit ECC core). */
    static constexpr size_t maxLimbs = 40;

    /** Constructs zero. */
    BigUInt() : n(0) { limbs.fill(0); }

    /** Constructs from a 64-bit value. */
    BigUInt(uint64_t v);

    /** Parse a (optionally "0x"-prefixed) big-endian hex string. */
    static BigUInt fromHex(const std::string &hex);

    /** Construct from big-endian bytes. */
    static BigUInt fromBytes(const std::vector<uint8_t> &bytes);

    /** Construct from little-endian 32-bit words. */
    static BigUInt fromWords(const std::vector<uint32_t> &words);

    /** 2^bit. */
    static BigUInt powerOfTwo(unsigned bit);

    /** Uniform random value in [0, bound). bound must be non-zero. */
    static BigUInt random(Rng &rng, const BigUInt &bound);

    /** Uniform random value with at most @p bits bits. */
    static BigUInt randomBits(Rng &rng, unsigned bits);

    /** Number of significant limbs (0 for the value zero). */
    size_t numLimbs() const { return n; }

    /** Limb @p i, or 0 if beyond the significant limbs. */
    uint32_t limb(size_t i) const { return i < n ? limbs[i] : 0; }

    /** Number of significant bits (0 for the value zero). */
    unsigned bitLength() const;

    /** Bit @p i (0 = least significant). */
    bool bit(unsigned i) const;

    /** Number of trailing zero bits (undefined for zero; panics). */
    unsigned trailingZeros() const;

    bool isZero() const { return n == 0; }
    bool isOdd() const { return n > 0 && (limbs[0] & 1); }
    bool isOne() const { return n == 1 && limbs[0] == 1; }

    /** Three-way comparison: negative, zero, or positive. */
    int compare(const BigUInt &other) const;

    BigUInt operator+(const BigUInt &o) const;
    /** Subtraction; panics if the result would be negative. */
    BigUInt operator-(const BigUInt &o) const;
    BigUInt operator*(const BigUInt &o) const;
    BigUInt operator/(const BigUInt &o) const;
    BigUInt operator%(const BigUInt &o) const;
    BigUInt operator<<(unsigned bits) const;
    BigUInt operator>>(unsigned bits) const;

    BigUInt &operator+=(const BigUInt &o) { return *this = *this + o; }
    BigUInt &operator-=(const BigUInt &o) { return *this = *this - o; }
    BigUInt &operator*=(const BigUInt &o) { return *this = *this * o; }
    BigUInt &operator<<=(unsigned b) { return *this = *this << b; }
    BigUInt &operator>>=(unsigned b) { return *this = *this >> b; }

    bool operator==(const BigUInt &o) const { return compare(o) == 0; }
    bool operator!=(const BigUInt &o) const { return compare(o) != 0; }
    bool operator<(const BigUInt &o) const { return compare(o) < 0; }
    bool operator<=(const BigUInt &o) const { return compare(o) <= 0; }
    bool operator>(const BigUInt &o) const { return compare(o) > 0; }
    bool operator>=(const BigUInt &o) const { return compare(o) >= 0; }

    /**
     * Quotient and remainder in one pass (Knuth Algorithm D).
     * @param num dividend
     * @param den divisor (must be non-zero)
     * @param quot receives num / den
     * @param rem receives num % den
     */
    static void divMod(const BigUInt &num, const BigUInt &den,
                       BigUInt &quot, BigUInt &rem);

    /** (this + o) mod m; operands must already be < m. */
    BigUInt addMod(const BigUInt &o, const BigUInt &m) const;

    /** (this - o) mod m; operands must already be < m. */
    BigUInt subMod(const BigUInt &o, const BigUInt &m) const;

    /** (this * o) mod m. */
    BigUInt mulMod(const BigUInt &o, const BigUInt &m) const;

    /** this^exp mod m (square-and-multiply). */
    BigUInt powMod(const BigUInt &exp, const BigUInt &m) const;

    /**
     * Modular inverse of this mod m via extended Euclid. The operand
     * is reduced mod m first; panics if gcd(this, m) != 1.
     */
    BigUInt invMod(const BigUInt &m) const;

    /** Greatest common divisor. */
    BigUInt gcd(const BigUInt &o) const;

    /** Value as uint64_t; panics if it does not fit. */
    uint64_t toUint64() const;

    /** Lowest 32 bits (0 for zero). */
    uint32_t low32() const { return limb(0); }

    /** Lowercase hex, no prefix, minimal digits ("0" for zero). */
    std::string toHex() const;

    /**
     * Big-endian bytes. If @p len is non-zero the output is padded (or
     * the call panics if the value does not fit in @p len bytes).
     */
    std::vector<uint8_t> toBytes(size_t len = 0) const;

    /** Little-endian 32-bit words, padded/truncated-checked to @p len. */
    std::vector<uint32_t> toWords(size_t len) const;

  private:
    /** Drop leading zero limbs. */
    void normalize();

    /** Set limb count, panicking if it exceeds capacity. */
    void setSize(size_t count);

    std::array<uint32_t, maxLimbs> limbs;
    size_t n;
};

} // namespace jaavr

#endif // JAAVR_BIGINT_BIG_UINT_HH
