#include "bigint/big_uint.hh"

#include "support/hex.hh"
#include "support/logging.hh"

namespace jaavr
{

void
BigUInt::setSize(size_t count)
{
    if (count > maxLimbs)
        panic("BigUInt capacity exceeded (%zu > %zu limbs)",
              count, maxLimbs);
    n = count;
}

void
BigUInt::normalize()
{
    while (n > 0 && limbs[n - 1] == 0)
        n--;
}

BigUInt::BigUInt(uint64_t v)
{
    limbs.fill(0);
    limbs[0] = static_cast<uint32_t>(v);
    limbs[1] = static_cast<uint32_t>(v >> 32);
    n = limbs[1] ? 2 : (limbs[0] ? 1 : 0);
}

BigUInt
BigUInt::fromHex(const std::string &hex)
{
    return fromBytes(hexDecode(hex));
}

BigUInt
BigUInt::fromBytes(const std::vector<uint8_t> &bytes)
{
    BigUInt r;
    size_t nbytes = bytes.size();
    r.setSize((nbytes + 3) / 4);
    for (size_t i = 0; i < nbytes; i++) {
        // bytes are big-endian: bytes[nbytes-1] is the LSB.
        size_t pos = nbytes - 1 - i;
        r.limbs[i / 4] |= static_cast<uint32_t>(bytes[pos]) << (8 * (i % 4));
    }
    r.normalize();
    return r;
}

BigUInt
BigUInt::fromWords(const std::vector<uint32_t> &words)
{
    BigUInt r;
    r.setSize(words.size());
    for (size_t i = 0; i < words.size(); i++)
        r.limbs[i] = words[i];
    r.normalize();
    return r;
}

BigUInt
BigUInt::powerOfTwo(unsigned bit)
{
    BigUInt r;
    r.setSize(bit / 32 + 1);
    r.limbs[bit / 32] = 1u << (bit % 32);
    return r;
}

BigUInt
BigUInt::randomBits(Rng &rng, unsigned bits)
{
    BigUInt r;
    unsigned nl = (bits + 31) / 32;
    r.setSize(nl);
    for (unsigned i = 0; i < nl; i++)
        r.limbs[i] = rng.next32();
    unsigned top = bits % 32;
    if (top)
        r.limbs[nl - 1] &= (1u << top) - 1;
    r.normalize();
    return r;
}

BigUInt
BigUInt::random(Rng &rng, const BigUInt &bound)
{
    if (bound.isZero())
        panic("BigUInt::random with zero bound");
    unsigned bits = bound.bitLength();
    // Rejection sampling: expected < 2 iterations.
    for (;;) {
        BigUInt r = randomBits(rng, bits);
        if (r < bound)
            return r;
    }
}

unsigned
BigUInt::bitLength() const
{
    if (n == 0)
        return 0;
    uint32_t top = limbs[n - 1];
    unsigned bits = (n - 1) * 32;
    while (top) {
        bits++;
        top >>= 1;
    }
    return bits;
}

bool
BigUInt::bit(unsigned i) const
{
    size_t l = i / 32;
    if (l >= n)
        return false;
    return (limbs[l] >> (i % 32)) & 1;
}

unsigned
BigUInt::trailingZeros() const
{
    if (n == 0)
        panic("trailingZeros of zero");
    unsigned tz = 0;
    size_t l = 0;
    while (limbs[l] == 0) {
        tz += 32;
        l++;
    }
    uint32_t w = limbs[l];
    while (!(w & 1)) {
        tz++;
        w >>= 1;
    }
    return tz;
}

int
BigUInt::compare(const BigUInt &other) const
{
    if (n != other.n)
        return n < other.n ? -1 : 1;
    for (size_t i = n; i-- > 0;) {
        if (limbs[i] != other.limbs[i])
            return limbs[i] < other.limbs[i] ? -1 : 1;
    }
    return 0;
}

BigUInt
BigUInt::operator+(const BigUInt &o) const
{
    BigUInt r;
    size_t nmax = std::max(n, o.n);
    r.setSize(nmax + 1);
    uint64_t carry = 0;
    for (size_t i = 0; i < nmax; i++) {
        uint64_t s = carry + limb(i) + o.limb(i);
        r.limbs[i] = static_cast<uint32_t>(s);
        carry = s >> 32;
    }
    r.limbs[nmax] = static_cast<uint32_t>(carry);
    r.normalize();
    return r;
}

BigUInt
BigUInt::operator-(const BigUInt &o) const
{
    if (compare(o) < 0)
        panic("BigUInt subtraction underflow");
    BigUInt r;
    r.setSize(n);
    int64_t borrow = 0;
    for (size_t i = 0; i < n; i++) {
        int64_t d = static_cast<int64_t>(limb(i)) - o.limb(i) - borrow;
        borrow = d < 0 ? 1 : 0;
        r.limbs[i] = static_cast<uint32_t>(d);
    }
    r.normalize();
    return r;
}

BigUInt
BigUInt::operator*(const BigUInt &o) const
{
    BigUInt r;
    if (isZero() || o.isZero())
        return r;
    r.setSize(n + o.n);
    for (size_t i = 0; i < n + o.n; i++)
        r.limbs[i] = 0;
    for (size_t i = 0; i < n; i++) {
        uint64_t carry = 0;
        for (size_t j = 0; j < o.n; j++) {
            uint64_t t = static_cast<uint64_t>(limbs[i]) * o.limbs[j] +
                         r.limbs[i + j] + carry;
            r.limbs[i + j] = static_cast<uint32_t>(t);
            carry = t >> 32;
        }
        r.limbs[i + o.n] = static_cast<uint32_t>(carry);
    }
    r.normalize();
    return r;
}

BigUInt
BigUInt::operator<<(unsigned bits) const
{
    if (isZero())
        return BigUInt();
    BigUInt r;
    unsigned limb_shift = bits / 32;
    unsigned bit_shift = bits % 32;
    r.setSize(n + limb_shift + (bit_shift ? 1 : 0));
    for (size_t i = 0; i < r.n; i++)
        r.limbs[i] = 0;
    for (size_t i = 0; i < n; i++) {
        r.limbs[i + limb_shift] |= limbs[i] << bit_shift;
        if (bit_shift)
            r.limbs[i + limb_shift + 1] |= limbs[i] >> (32 - bit_shift);
    }
    r.normalize();
    return r;
}

BigUInt
BigUInt::operator>>(unsigned bits) const
{
    unsigned limb_shift = bits / 32;
    unsigned bit_shift = bits % 32;
    BigUInt r;
    if (limb_shift >= n)
        return r;
    r.setSize(n - limb_shift);
    for (size_t i = 0; i < r.n; i++) {
        uint32_t lo = limbs[i + limb_shift] >> bit_shift;
        uint32_t hi = 0;
        if (bit_shift && i + limb_shift + 1 < n)
            hi = limbs[i + limb_shift + 1] << (32 - bit_shift);
        r.limbs[i] = lo | hi;
    }
    r.normalize();
    return r;
}

void
BigUInt::divMod(const BigUInt &num, const BigUInt &den,
                BigUInt &quot, BigUInt &rem)
{
    if (den.isZero())
        panic("BigUInt division by zero");
    if (num.compare(den) < 0) {
        rem = num;
        quot = BigUInt();
        return;
    }
    if (den.n == 1) {
        // Single-limb fast path.
        uint64_t d = den.limbs[0];
        BigUInt q;
        q.setSize(num.n);
        uint64_t r = 0;
        for (size_t i = num.n; i-- > 0;) {
            uint64_t cur = (r << 32) | num.limbs[i];
            q.limbs[i] = static_cast<uint32_t>(cur / d);
            r = cur % d;
        }
        q.normalize();
        quot = q;
        rem = BigUInt(r);
        return;
    }

    // Knuth TAOCP vol. 2, Algorithm D. Normalize so the divisor's top
    // limb has its most significant bit set. t >= 2 here (the
    // single-limb case was handled above).
    unsigned shift = (32 - den.bitLength() % 32) % 32;
    BigUInt u = num << shift;
    BigUInt v = den << shift;
    size_t t = v.n;
    // Extend the dividend by one (zero) high limb; limbs beyond the
    // significant count are zero by representation invariant.
    size_t un = u.n + 1;
    u.setSize(un);

    BigUInt q;
    q.setSize(un - t);
    const uint64_t base = 1ULL << 32;
    uint64_t vtop = v.limbs[t - 1];
    uint64_t vnext = v.limbs[t - 2];

    for (size_t j = un - t; j-- > 0;) {
        // Estimate the quotient digit from the top two dividend limbs,
        // then correct it using the third limb (at most two decrements).
        uint64_t numer =
            (static_cast<uint64_t>(u.limbs[j + t]) << 32) | u.limbs[j + t - 1];
        uint64_t qhat = numer / vtop;
        uint64_t rhat = numer % vtop;
        while (qhat >= base ||
               qhat * vnext > ((rhat << 32) | u.limbs[j + t - 2])) {
            qhat--;
            rhat += vtop;
            if (rhat >= base)
                break;
        }

        // Multiply-and-subtract qhat * v from u[j .. j+t].
        int64_t borrow = 0;
        uint64_t carry = 0;
        for (size_t i = 0; i < t; i++) {
            uint64_t p = qhat * v.limbs[i] + carry;
            carry = p >> 32;
            int64_t d = static_cast<int64_t>(u.limbs[i + j]) -
                        static_cast<int64_t>(p & 0xffffffffULL) - borrow;
            borrow = d < 0 ? 1 : 0;
            u.limbs[i + j] = static_cast<uint32_t>(d);
        }
        int64_t d = static_cast<int64_t>(u.limbs[j + t]) -
                    static_cast<int64_t>(carry) - borrow;
        borrow = d < 0 ? 1 : 0;
        u.limbs[j + t] = static_cast<uint32_t>(d);

        if (borrow) {
            // qhat was one too large; add v back.
            qhat--;
            uint64_t c = 0;
            for (size_t i = 0; i < t; i++) {
                uint64_t s = c + u.limbs[i + j] + v.limbs[i];
                u.limbs[i + j] = static_cast<uint32_t>(s);
                c = s >> 32;
            }
            u.limbs[j + t] += static_cast<uint32_t>(c);
        }
        q.limbs[j] = static_cast<uint32_t>(qhat);
    }

    q.normalize();
    u.setSize(t);
    u.normalize();
    quot = q;
    rem = u >> shift;
}

BigUInt
BigUInt::operator/(const BigUInt &o) const
{
    BigUInt q, r;
    divMod(*this, o, q, r);
    return q;
}

BigUInt
BigUInt::operator%(const BigUInt &o) const
{
    BigUInt q, r;
    divMod(*this, o, q, r);
    return r;
}

BigUInt
BigUInt::addMod(const BigUInt &o, const BigUInt &m) const
{
    BigUInt s = *this + o;
    if (s >= m)
        s -= m;
    return s;
}

BigUInt
BigUInt::subMod(const BigUInt &o, const BigUInt &m) const
{
    if (compare(o) >= 0)
        return *this - o;
    return *this + m - o;
}

BigUInt
BigUInt::mulMod(const BigUInt &o, const BigUInt &m) const
{
    return (*this * o) % m;
}

BigUInt
BigUInt::powMod(const BigUInt &exp, const BigUInt &m) const
{
    if (m.isZero())
        panic("powMod with zero modulus");
    BigUInt base = *this % m;
    BigUInt result(1);
    if (m.isOne())
        return BigUInt();
    for (size_t i = exp.bitLength(); i-- > 0;) {
        result = result.mulMod(result, m);
        if (exp.bit(i))
            result = result.mulMod(base, m);
    }
    return result;
}

BigUInt
BigUInt::invMod(const BigUInt &m) const
{
    // Extended Euclid on (a, m) tracking only the coefficient of a,
    // with signs handled explicitly.
    BigUInt a = *this % m;
    if (a.isZero())
        panic("invMod: operand shares factor with modulus");
    BigUInt r0 = m, r1 = a;
    BigUInt s0(0), s1(1);
    bool neg0 = false, neg1 = false;

    while (!r1.isZero()) {
        BigUInt q, r2;
        divMod(r0, r1, q, r2);
        // s2 = s0 - q * s1 with explicit sign tracking.
        BigUInt qs1 = q * s1;
        BigUInt s2;
        bool neg2;
        if (neg0 == neg1) {
            // Same sign: result is s0 - qs1 in magnitude terms.
            if (s0 >= qs1) {
                s2 = s0 - qs1;
                neg2 = neg0;
            } else {
                s2 = qs1 - s0;
                neg2 = !neg0;
            }
        } else {
            s2 = s0 + qs1;
            neg2 = neg0;
        }
        r0 = r1;
        r1 = r2;
        s0 = s1;
        neg0 = neg1;
        s1 = s2;
        neg1 = neg2;
    }

    if (!r0.isOne())
        panic("invMod: gcd != 1 (gcd = %s)", r0.toHex().c_str());

    BigUInt inv = s0 % m;
    if (neg0 && !inv.isZero())
        inv = m - inv;
    return inv;
}

BigUInt
BigUInt::gcd(const BigUInt &o) const
{
    BigUInt a = *this, b = o;
    while (!b.isZero()) {
        BigUInt r = a % b;
        a = b;
        b = r;
    }
    return a;
}

uint64_t
BigUInt::toUint64() const
{
    if (n > 2)
        panic("BigUInt::toUint64: value too large (%s)", toHex().c_str());
    uint64_t v = limb(0);
    v |= static_cast<uint64_t>(limb(1)) << 32;
    return v;
}

std::string
BigUInt::toHex() const
{
    if (n == 0)
        return "0";
    std::string out;
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%x", limbs[n - 1]);
    out += buf;
    for (size_t i = n - 1; i-- > 0;) {
        std::snprintf(buf, sizeof(buf), "%08x", limbs[i]);
        out += buf;
    }
    return out;
}

std::vector<uint8_t>
BigUInt::toBytes(size_t len) const
{
    size_t need = (bitLength() + 7) / 8;
    if (len == 0)
        len = need ? need : 1;
    if (need > len)
        panic("BigUInt::toBytes: value needs %zu bytes, got %zu", need, len);
    std::vector<uint8_t> out(len, 0);
    for (size_t i = 0; i < need; i++)
        out[len - 1 - i] = static_cast<uint8_t>(limbs[i / 4] >> (8 * (i % 4)));
    return out;
}

std::vector<uint32_t>
BigUInt::toWords(size_t len) const
{
    if (n > len)
        panic("BigUInt::toWords: value needs %zu words, got %zu", n, len);
    std::vector<uint32_t> out(len, 0);
    for (size_t i = 0; i < n; i++)
        out[i] = limbs[i];
    return out;
}

} // namespace jaavr
