/**
 * @file
 * Signed arbitrary-precision integers (sign + magnitude over BigUInt).
 *
 * Used where negative intermediates are natural: extended Euclid,
 * GLV scalar decomposition (k1, k2 may be negative), Cornacchia's
 * algorithm, and signed-digit recodings.
 */

#ifndef JAAVR_BIGINT_BIG_INT_HH
#define JAAVR_BIGINT_BIG_INT_HH

#include <string>

#include "bigint/big_uint.hh"

namespace jaavr
{

class BigInt
{
  public:
    BigInt() : mag(), neg(false) {}
    BigInt(int64_t v);
    BigInt(const BigUInt &m, bool negative = false)
        : mag(m), neg(negative && !m.isZero())
    {}

    const BigUInt &magnitude() const { return mag; }
    bool isNegative() const { return neg; }
    bool isZero() const { return mag.isZero(); }

    /** Three-way comparison. */
    int compare(const BigInt &o) const;

    BigInt operator-() const { return BigInt(mag, !neg); }
    BigInt operator+(const BigInt &o) const;
    BigInt operator-(const BigInt &o) const;
    BigInt operator*(const BigInt &o) const;

    /** Truncated (round-toward-zero) quotient. */
    BigInt operator/(const BigInt &o) const;

    /** Remainder matching the truncated quotient (sign of dividend). */
    BigInt operator%(const BigInt &o) const;

    BigInt &operator+=(const BigInt &o) { return *this = *this + o; }
    BigInt &operator-=(const BigInt &o) { return *this = *this - o; }
    BigInt &operator*=(const BigInt &o) { return *this = *this * o; }

    bool operator==(const BigInt &o) const { return compare(o) == 0; }
    bool operator!=(const BigInt &o) const { return compare(o) != 0; }
    bool operator<(const BigInt &o) const { return compare(o) < 0; }
    bool operator<=(const BigInt &o) const { return compare(o) <= 0; }
    bool operator>(const BigInt &o) const { return compare(o) > 0; }
    bool operator>=(const BigInt &o) const { return compare(o) >= 0; }

    /**
     * Least non-negative residue mod m (m > 0): always in [0, m),
     * unlike operator%.
     */
    BigUInt mod(const BigUInt &m) const;

    /** "-1ab3" style signed hex. */
    std::string toString() const;

  private:
    BigUInt mag;
    bool neg;
};

} // namespace jaavr

#endif // JAAVR_BIGINT_BIG_INT_HH
