#include "service/context.hh"

namespace jaavr
{

const ServiceCurveSet &
ServiceCurveSet::instance()
{
    static const ServiceCurveSet snap = [] {
        ServiceCurveSet v;
        const WeierstrassCurve &r1c = secp160r1Curve();
        const CurveGenerator &r1g = secp160r1Generator();
        v.r1A = r1c.coeffA();
        v.r1B = r1c.coeffB();
        v.r1G = r1g.g;
        v.r1N = r1g.order;
        v.k1Params = secp160k1Curve().params();
        v.glvP = glvOpfField().modulus();
        v.glvParams = glvOpfCurve().params();
        v.opfP = paperOpfField().modulus();
        const WeierstrassCurve &w = weierstrassOpfCurve();
        v.wA = w.coeffA();
        v.wB = w.coeffB();
        v.wBase = weierstrassOpfBasePoint();
        const MontgomeryCurve &m = montgomeryOpfCurve();
        v.mA = m.coeffA();
        v.mB = m.coeffB();
        v.mBaseX = montgomeryOpfBasePoint().x;
        const EdwardsCurve &e = edwardsOpfCurve();
        v.eA = e.coeffA();
        v.eD = e.coeffD();
        v.eBase = edwardsOpfBasePoint();
        return v;
    }();
    return snap;
}

bool
serviceOrderKnown(ServiceCurve c)
{
    switch (c) {
    case ServiceCurve::Secp160r1:
    case ServiceCurve::Secp160k1:
    case ServiceCurve::GlvOpf:
        return true;
    case ServiceCurve::WeierstrassOpf:
    case ServiceCurve::MontgomeryOpf:
    case ServiceCurve::EdwardsOpf:
        return false;
    }
    return false;
}

namespace
{
const ServiceCurveSet &
S()
{
    return ServiceCurveSet::instance();
}
} // namespace

WorkerContext::WorkerContext(uint64_t rng_seed, CpuMode machine_mode)
    : r1Field(),
      k1Field(),
      glvField(S().glvP),
      opfField(S().opfP),
      r1Scalar(S().r1N),
      k1Scalar(S().k1Params.order),
      glvScalar(S().glvParams.order),
      secp160r1(r1Field, S().r1A, S().r1B, "secp160r1"),
      secp160k1(k1Field, S().k1Params, "secp160k1"),
      glvOpf(glvField, S().glvParams, "glv-opf"),
      weierstrassOpf(opfField, S().wA, S().wB, "weierstrass-opf"),
      montgomeryOpf(opfField, S().mA, S().mB, "montgomery-opf"),
      edwardsOpf(opfField, S().eA, S().eD, "edwards-opf"),
      ecdsaR1(secp160r1, S().r1G, S().r1N),
      ecdsaK1(secp160k1),
      ecdsaGlv(glvOpf),
      rng(rng_seed),
      machine(machine_mode)
{}

Ecdsa *
WorkerContext::signerFor(ServiceCurve c)
{
    switch (c) {
    case ServiceCurve::Secp160r1:
        return &ecdsaR1;
    case ServiceCurve::Secp160k1:
        return &ecdsaK1;
    case ServiceCurve::GlvOpf:
        return &ecdsaGlv;
    default:
        return nullptr;
    }
}

const PrimeField *
WorkerContext::scalarFieldFor(ServiceCurve c) const
{
    switch (c) {
    case ServiceCurve::Secp160r1:
        return &r1Scalar;
    case ServiceCurve::Secp160k1:
        return &k1Scalar;
    case ServiceCurve::GlvOpf:
        return &glvScalar;
    default:
        return nullptr;
    }
}

const WeierstrassCurve *
WorkerContext::weierstrassFor(ServiceCurve c) const
{
    switch (c) {
    case ServiceCurve::Secp160r1:
        return &secp160r1;
    case ServiceCurve::Secp160k1:
        return &secp160k1;
    case ServiceCurve::GlvOpf:
        return &glvOpf;
    case ServiceCurve::WeierstrassOpf:
        return &weierstrassOpf;
    default:
        return nullptr;
    }
}

ServiceTables
ServiceTables::build(const ServiceCurveSet &snap, unsigned width)
{
    // The combs store only plain affine point data, so the curve and
    // field objects used to build them can be transient.
    ServiceTables t;
    {
        Secp160r1Field f;
        WeierstrassCurve c(f, snap.r1A, snap.r1B, "secp160r1");
        t.r1 = std::make_unique<FixedBaseComb>(
            c, snap.r1G, snap.r1N.bitLength(), width);
    }
    {
        Secp160k1Field f;
        GlvCurve c(f, snap.k1Params, "secp160k1");
        t.k1 = std::make_unique<FixedBaseComb>(
            c, c.generator(), snap.k1Params.order.bitLength(), width);
    }
    {
        PrimeField f(snap.glvP);
        GlvCurve c(f, snap.glvParams, "glv-opf");
        t.glv = std::make_unique<FixedBaseComb>(
            c, c.generator(), snap.glvParams.order.bitLength(), width);
    }
    return t;
}

} // namespace jaavr
