/**
 * @file
 * Bounded lock-free ring queue (Vyukov's bounded MPMC algorithm,
 * used here as the per-worker MPSC request queue of the ECC service
 * — DESIGN.md §14).
 *
 * Each cell carries a sequence number that encodes, relative to the
 * ring lap, whether the cell is free for the next producer or holds a
 * value for the next consumer. Producers claim cells with one CAS on
 * the enqueue cursor; the single consumer per queue claims with a
 * plain load/store pair on the dequeue cursor (the algorithm also
 * supports multiple consumers, so the same type backs tests that pop
 * from several threads). Push and pop are wait-free when uncontended
 * and lock-free under contention; a full queue rejects the push
 * instead of blocking, which is the backpressure signal
 * EccService::trySubmit reports to callers.
 */

#ifndef JAAVR_SERVICE_QUEUE_HH
#define JAAVR_SERVICE_QUEUE_HH

#include <atomic>
#include <cstddef>
#include <memory>

#include "support/logging.hh"

namespace jaavr
{

template <typename T>
class BoundedMpmcQueue
{
  public:
    /** @param capacity slots; rounded up to a power of two >= 2. */
    explicit BoundedMpmcQueue(size_t capacity)
    {
        size_t cap = 2;
        while (cap < capacity) {
            cap <<= 1;
            if (cap == 0)
                fatal("BoundedMpmcQueue: capacity overflow");
        }
        cells = std::make_unique<Cell[]>(cap);
        maskv = cap - 1;
        for (size_t i = 0; i < cap; i++)
            cells[i].seq.store(i, std::memory_order_relaxed);
        enqueuePos.store(0, std::memory_order_relaxed);
        dequeuePos.store(0, std::memory_order_relaxed);
    }

    BoundedMpmcQueue(const BoundedMpmcQueue &) = delete;
    BoundedMpmcQueue &operator=(const BoundedMpmcQueue &) = delete;

    /** False iff the queue is full. Safe from any thread. */
    bool
    tryPush(const T &v)
    {
        size_t pos = enqueuePos.load(std::memory_order_relaxed);
        for (;;) {
            Cell &cell = cells[pos & maskv];
            size_t seq = cell.seq.load(std::memory_order_acquire);
            intptr_t diff = intptr_t(seq) - intptr_t(pos);
            if (diff == 0) {
                if (enqueuePos.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed))
                {
                    cell.value = v;
                    cell.seq.store(pos + 1, std::memory_order_release);
                    return true;
                }
                // CAS failure reloaded pos; retry that cell.
            } else if (diff < 0) {
                return false;  // cell still holds the previous lap
            } else {
                pos = enqueuePos.load(std::memory_order_relaxed);
            }
        }
    }

    /** False iff the queue is empty. Safe from any thread. */
    bool
    tryPop(T &out)
    {
        size_t pos = dequeuePos.load(std::memory_order_relaxed);
        for (;;) {
            Cell &cell = cells[pos & maskv];
            size_t seq = cell.seq.load(std::memory_order_acquire);
            intptr_t diff = intptr_t(seq) - intptr_t(pos + 1);
            if (diff == 0) {
                if (dequeuePos.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed))
                {
                    out = cell.value;
                    cell.seq.store(pos + maskv + 1,
                                   std::memory_order_release);
                    return true;
                }
            } else if (diff < 0) {
                return false;  // empty (producer not done yet)
            } else {
                pos = dequeuePos.load(std::memory_order_relaxed);
            }
        }
    }

    /** Momentary depth; approximate under concurrent traffic. */
    size_t
    sizeApprox() const
    {
        size_t e = enqueuePos.load(std::memory_order_relaxed);
        size_t d = dequeuePos.load(std::memory_order_relaxed);
        return e >= d ? e - d : 0;
    }

    size_t capacity() const { return maskv + 1; }

  private:
    struct Cell
    {
        std::atomic<size_t> seq{0};
        T value{};
    };

    // The cursors live on separate cache lines so producers hammering
    // enqueuePos do not false-share with the consumer's dequeuePos.
    std::unique_ptr<Cell[]> cells;
    size_t maskv;
    alignas(64) std::atomic<size_t> enqueuePos;
    alignas(64) std::atomic<size_t> dequeuePos;
};

} // namespace jaavr

#endif // JAAVR_SERVICE_QUEUE_HH
