#include "service/service.hh"

#include <algorithm>
#include <array>
#include <chrono>

#include "curves/validate.hh"
#include "field/batch_inverse.hh"
#include "support/logging.hh"

namespace jaavr
{

const char *
serviceOpName(ServiceOp op)
{
    switch (op) {
    case ServiceOp::Sign:
        return "sign";
    case ServiceOp::Verify:
        return "verify";
    case ServiceOp::Keygen:
        return "keygen";
    case ServiceOp::Derive:
        return "derive";
    }
    return "?";
}

const char *
serviceCurveName(ServiceCurve c)
{
    switch (c) {
    case ServiceCurve::Secp160r1:
        return "secp160r1";
    case ServiceCurve::Secp160k1:
        return "secp160k1";
    case ServiceCurve::GlvOpf:
        return "glv-opf";
    case ServiceCurve::WeierstrassOpf:
        return "weierstrass-opf";
    case ServiceCurve::MontgomeryOpf:
        return "montgomery-opf";
    case ServiceCurve::EdwardsOpf:
        return "edwards-opf";
    }
    return "?";
}

namespace
{

constexpr uint64_t kNoShardHint = ~uint64_t(0);

std::vector<double>
latencyBoundsUs()
{
    return {25,    50,    100,   250,    500,    1000,   2500,
            5000,  10000, 25000, 50000,  100000, 250000, 1000000};
}

std::vector<double>
occupancyBounds()
{
    return {1, 2, 4, 8, 16, 32, 64, 128};
}

void
fail(ServiceRequest &r, ServiceStatus st, const std::string &why)
{
    r.status = st;
    r.error = why;
}

BigUInt
randomScalar(Rng &rng, const BigUInt &n)
{
    return BigUInt(1) + BigUInt::random(rng, n - BigUInt(1));
}

/** Finalizing 64-bit mix (splitmix64) so adjacent hints spread. */
uint64_t
mixHint(uint64_t h)
{
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 33;
    return h;
}

} // namespace

EccService::EccService(const ServiceConfig &config)
    : cfg(config),
      tables(config.amortize
                 ? ServiceTables::build(ServiceCurveSet::instance())
                 : ServiceTables{})
{
    if (cfg.workers == 0)
        fatal("EccService: at least one worker required");
    if (cfg.batchMax == 0)
        fatal("EccService: batchMax must be >= 1");
    for (unsigned i = 0; i < cfg.workers; i++) {
        contexts.push_back(std::make_unique<WorkerContext>(
            cfg.rngSeed + i, cfg.machineMode));
        queues.push_back(std::make_unique<BoundedMpmcQueue<ServiceRequest *>>(
            cfg.queueCapacity));
        stats.push_back(std::make_unique<WorkerStats>(latencyBoundsUs(),
                                                      occupancyBounds()));
        if (cfg.amortize) {
            WorkerContext &ctx = *contexts.back();
            ctx.ecdsaR1.attachFixedBase(tables.r1.get());
            ctx.ecdsaK1.attachFixedBase(tables.k1.get());
            ctx.ecdsaGlv.attachFixedBase(tables.glv.get());
        }
    }
}

EccService::~EccService()
{
    stop();
}

void
EccService::start()
{
    if (!threads.empty())
        return;
    running.store(true, std::memory_order_release);
    for (unsigned i = 0; i < cfg.workers; i++)
        threads.emplace_back([this, i] { workerLoop(i); });
}

void
EccService::stop()
{
    accepting.store(false, std::memory_order_release);
    if (threads.empty())
        return;
    running.store(false, std::memory_order_release);
    for (std::thread &t : threads)
        t.join();
    threads.clear();
}

void
EccService::setTracer(obs::SpanTracer *t)
{
    if (started())
        fatal("EccService::setTracer: attach before start()");
    tracer = t;
    traceRings.clear();
    if (!tracer)
        return;
    for (unsigned i = 0; i < cfg.workers; i++)
        traceRings.push_back(tracer->ring("worker" + std::to_string(i)));
}

void
EccService::setFlightRecorder(obs::FlightRecorder *f)
{
    if (started())
        fatal("EccService::setFlightRecorder: attach before start()");
    flight = f;
    flightSources.clear();
    flightSubmit = nullptr;
    if (!flight)
        return;
    for (unsigned i = 0; i < cfg.workers; i++)
        flightSources.push_back(
            flight->source("worker" + std::to_string(i)));
    flightSubmit = flight->source("submit");
}

bool
EccService::trySubmit(ServiceRequest *req)
{
    if (!accepting.load(std::memory_order_acquire))
        return false;
    req->done.store(false, std::memory_order_relaxed);
    req->status = ServiceStatus::Pending;
    req->error.clear();
    req->traceId =
        tracer && tracer->enabled() ? tracer->newTraceId() : 0;
    req->poppedAtUs = 0;
    req->enqueuedAt = std::chrono::steady_clock::now();
    size_t w = req->shardHint == kNoShardHint
                   ? roundRobin.fetch_add(1, std::memory_order_relaxed) %
                         queues.size()
                   : mixHint(req->shardHint) % queues.size();
    if (queues[w]->tryPush(req))
        return true;
    // Backpressure: the shard queue is full. Only the *onset* lands
    // in the flight ring (submit() spins here under saturation, so
    // per-refusal recording would become the hot path); the refusal
    // counter keeps the full tally.
    uint64_t n = refusals.fetch_add(1, std::memory_order_relaxed) + 1;
    if (flightSubmit && n == 1) {
        flightSubmit->record(n, "backpressure",
                             csprintf("shard %zu queue full", w),
                             static_cast<uint64_t>(w),
                             cfg.queueCapacity);
        flight->trigger("service_backpressure");
    }
    return false;
}

bool
EccService::submit(ServiceRequest *req)
{
    for (;;) {
        if (trySubmit(req))
            return true;
        if (!accepting.load(std::memory_order_acquire))
            return false;
        std::this_thread::yield();
    }
}

void
EccService::wait(const ServiceRequest &req)
{
    while (!req.done.load(std::memory_order_acquire))
        std::this_thread::yield();
}

uint64_t
EccService::opsProcessed() const
{
    uint64_t total = 0;
    for (const auto &st : stats)
        total += st->ops.load(std::memory_order_relaxed);
    return total;
}

void
EccService::workerLoop(unsigned idx)
{
    WorkerContext &ctx = *contexts[idx];
    BoundedMpmcQueue<ServiceRequest *> &q = *queues[idx];
    WorkerStats &st = *stats[idx];
    std::vector<ServiceRequest *> batch;
    batch.reserve(cfg.batchMax);
    unsigned idle = 0;

    for (;;) {
        batch.clear();
        ServiceRequest *req = nullptr;
        // One relaxed flag sample per wake: the pop-time stamps only
        // exist while tracing, so the idle-tracer drain loop stays
        // pop + push_back.
        bool tracing = tracer && tracer->enabled();
        while (batch.size() < cfg.batchMax && q.tryPop(req)) {
            if (tracing)
                req->poppedAtUs = tracer->nowUs();
            batch.push_back(req);
        }
        if (batch.empty()) {
            if (!running.load(std::memory_order_acquire)) {
                // Drain check after observing shutdown: anything a
                // producer pushed before stop() is still processed.
                if (!q.tryPop(req))
                    break;
                if (tracing)
                    req->poppedAtUs = tracer->nowUs();
                batch.push_back(req);
            } else if (idle < 64) {
                idle++;
                continue;
            } else if (idle < 128) {
                idle++;
                std::this_thread::yield();
                continue;
            } else {
                std::this_thread::sleep_for(std::chrono::microseconds(50));
                continue;
            }
        }
        idle = 0;
        processBatch(ctx, st, batch, idx);
    }
}

void
EccService::processBatch(WorkerContext &ctx, WorkerStats &st,
                         std::vector<ServiceRequest *> &batch,
                         unsigned idx)
{
    // Tracing context for this drain: one shared "drain" span, child
    // "request" spans carrying the queue-wait / drain-wait stage
    // split, and one "amortize" child per batched group. All
    // recording happens in this worker's own ring.
    obs::SpanRing *ring =
        tracer && tracer->enabled() ? traceRings[idx] : nullptr;
    uint64_t drainBeginUs = 0, drainSpan = 0;
    if (ring) {
        drainBeginUs = tracer->nowUs();
        drainSpan = tracer->newSpanId();
    }
    auto group = [&](const char *name, size_t n, auto &&fn) {
        if (!ring) {
            fn();
            return;
        }
        obs::SpanRecord s;
        s.name = name;
        s.cat = "amortize";
        s.spanId = tracer->newSpanId();
        s.parentId = drainSpan;
        s.beginUs = tracer->nowUs();
        fn();
        s.endUs = tracer->nowUs();
        s.arg0Name = "group_size";
        s.arg0 = n;
        ring->push(s);
    };

    if (!cfg.amortize || batch.size() == 1) {
        // The unamortized configuration: every request takes the
        // pre-existing single-call library path.
        for (ServiceRequest *r : batch)
            processSingle(ctx, *r);
    } else {
        // Partition the micro-batch into amortizable groups. Verify
        // and hardened requests have no cross-request amortization
        // (beyond the shared comb inside verify) and run singly.
        std::array<std::vector<ServiceRequest *>, 6> signG, deriveW;
        std::vector<ServiceRequest *> deriveM, deriveE, singles;
        for (ServiceRequest *rp : batch) {
            ServiceRequest &r = *rp;
            switch (r.op) {
            case ServiceOp::Sign:
            case ServiceOp::Keygen:
                if (!serviceOrderKnown(r.curve))
                    fail(r, ServiceStatus::InvalidRequest,
                         "ECDSA requires a curve with a known order");
                else
                    signG[size_t(r.curve)].push_back(rp);
                break;
            case ServiceOp::Verify:
                singles.push_back(rp);
                break;
            case ServiceOp::Derive:
                if (r.hardened)
                    singles.push_back(rp);
                else if (r.curve == ServiceCurve::MontgomeryOpf)
                    deriveM.push_back(rp);
                else if (r.curve == ServiceCurve::EdwardsOpf)
                    deriveE.push_back(rp);
                else
                    deriveW[size_t(r.curve)].push_back(rp);
                break;
            }
        }
        for (auto &g : signG)
            if (!g.empty())
                group("sign_batch", g.size(),
                      [&] { processSignBatch(ctx, g); });
        for (auto &g : deriveW)
            if (!g.empty())
                group("derive_w_batch", g.size(),
                      [&] { processDeriveWeierstrassBatch(ctx, g); });
        if (!deriveM.empty())
            group("derive_m_batch", deriveM.size(),
                  [&] { processDeriveMontgomeryBatch(ctx, deriveM); });
        if (!deriveE.empty())
            group("derive_e_batch", deriveE.size(),
                  [&] { processDeriveEdwardsBatch(ctx, deriveE); });
        if (!singles.empty())
            group("singles", singles.size(), [&] {
                for (ServiceRequest *r : singles)
                    processSingle(ctx, *r);
            });
    }

    for (ServiceRequest *r : batch)
        if (r->status == ServiceStatus::Pending)
            fail(*r, ServiceStatus::InvalidRequest, "unhandled request");

    auto now = std::chrono::steady_clock::now();
    {
        std::lock_guard<std::mutex> lk(st.histMutex);
        st.occupancy.observe(double(batch.size()));
        for (ServiceRequest *r : batch)
            st.latencyUs.observe(
                std::chrono::duration<double, std::micro>(now - r->enqueuedAt)
                    .count());
    }
    uint64_t failed = 0;
    for (ServiceRequest *r : batch) {
        st.opsByKind[size_t(r->op)].fetch_add(1, std::memory_order_relaxed);
        if (r->status != ServiceStatus::Ok)
            failed++;
    }
    uint64_t opsBefore =
        st.ops.fetch_add(batch.size(), std::memory_order_relaxed);
    st.batches.fetch_add(1, std::memory_order_relaxed);
    if (failed)
        st.failed.fetch_add(failed, std::memory_order_relaxed);

    if (ring) {
        // Request spans tile end-to-end latency exactly:
        // queue_wait (enqueue → pop) + drain_wait (pop → drain
        // begin) + compute (drain begin → done) == dur. All stamps
        // come from the tracer clock, so the attribution table can
        // reconstruct the p99 decomposition without residue.
        uint64_t endUs = tracer->toUs(now);
        for (ServiceRequest *r : batch) {
            uint64_t enqUs =
                std::min(tracer->toUs(r->enqueuedAt), drainBeginUs);
            uint64_t popUs =
                std::clamp(r->poppedAtUs, enqUs, drainBeginUs);
            obs::SpanRecord s;
            s.name = serviceOpName(r->op);
            s.cat = "service";
            s.traceId = r->traceId;
            s.spanId = tracer->newSpanId();
            s.parentId = drainSpan;
            s.beginUs = enqUs;
            s.endUs = std::max(endUs, drainBeginUs);
            s.arg0Name = "queue_wait_us";
            s.arg0 = popUs - enqUs;
            s.arg1Name = "drain_wait_us";
            s.arg1 = drainBeginUs - popUs;
            ring->push(s);
        }
        obs::SpanRecord d;
        d.name = "drain";
        d.cat = "service";
        d.spanId = drainSpan;
        d.beginUs = drainBeginUs;
        d.endUs = std::max(tracer->toUs(now), drainBeginUs);
        d.arg0Name = "batch";
        d.arg0 = batch.size();
        d.arg1Name = "worker";
        d.arg1 = idx;
        ring->push(d);
    }

    if (!flightSources.empty()) {
        // Flight triggers: a Verify that rejected its signature or a
        // hardened recomputation that disagreed is the service-level
        // "verify mismatch" anomaly. Times are per-worker op
        // ordinals, so a deterministic workload dumps
        // byte-identically.
        obs::FlightRecorder::Source *src = flightSources[idx];
        uint64_t ord = opsBefore;
        for (ServiceRequest *r : batch) {
            ord++;
            bool rejected = r->op == ServiceOp::Verify &&
                            r->status == ServiceStatus::Ok &&
                            !r->verifyOk;
            bool hardenedFailed =
                r->status == ServiceStatus::HardenedFailed;
            if (!rejected && !hardenedFailed)
                continue;
            src->record(ord, "verify_mismatch",
                        csprintf("%s %s %s",
                                 serviceOpName(r->op),
                                 serviceCurveName(r->curve),
                                 rejected ? "signature rejected"
                                          : r->error.c_str()),
                        r->traceId, static_cast<uint64_t>(idx));
            flight->trigger("service_verify_mismatch");
        }
    }

    // Publish the outputs: everything above happens-before this
    // release store, which the caller's acquire load in wait() pairs
    // with.
    for (ServiceRequest *r : batch)
        r->done.store(true, std::memory_order_release);
}

void
EccService::processSingle(WorkerContext &ctx, ServiceRequest &r)
{
    Ecdsa *S = ctx.signerFor(r.curve);
    switch (r.op) {
    case ServiceOp::Sign: {
        if (!S) {
            fail(r, ServiceStatus::InvalidRequest,
                 "ECDSA requires a curve with a known order");
            return;
        }
        const BigUInt &n = S->order();
        if (!validScalar(r.privateKey, n)) {
            fail(r, ServiceStatus::InvalidRequest,
                 "private key out of range");
            return;
        }
        if (!r.nonce.isZero()) {
            if (!validScalar(r.nonce, n)) {
                fail(r, ServiceStatus::InvalidRequest, "nonce out of range");
                return;
            }
            auto sig = S->signWithNonce(r.message, r.privateKey, r.nonce);
            if (!sig) {
                fail(r, ServiceStatus::InvalidRequest, "degenerate nonce");
                return;
            }
            r.sigOut = *sig;
        } else {
            r.sigOut = S->sign(r.message, r.privateKey, ctx.rng);
        }
        r.status = ServiceStatus::Ok;
        return;
    }
    case ServiceOp::Verify: {
        if (!S) {
            fail(r, ServiceStatus::InvalidRequest,
                 "ECDSA requires a curve with a known order");
            return;
        }
        r.verifyOk = S->verify(r.message, r.signature, r.peer);
        r.status = ServiceStatus::Ok;
        return;
    }
    case ServiceOp::Keygen: {
        if (!S) {
            fail(r, ServiceStatus::InvalidRequest,
                 "ECDSA requires a curve with a known order");
            return;
        }
        if (!r.privateKey.isZero()) {
            if (!validScalar(r.privateKey, S->order())) {
                fail(r, ServiceStatus::InvalidRequest,
                     "forced private key out of range");
                return;
            }
            r.keyOut.d = r.privateKey;
            r.keyOut.q = S->mulG(r.privateKey);
        } else {
            r.keyOut = S->generateKey(ctx.rng);
        }
        r.status = ServiceStatus::Ok;
        return;
    }
    case ServiceOp::Derive:
        break;
    }

    // Derive.
    if (r.hardened) {
        HardenedMul h;
        switch (r.curve) {
        case ServiceCurve::Secp160r1:
            h = hardenedMulWeierstrass(ctx.secp160r1, r.privateKey, r.peer,
                                       ctx.ecdsaR1.order());
            break;
        case ServiceCurve::Secp160k1:
            h = hardenedMulGlv(ctx.secp160k1, r.privateKey, r.peer);
            break;
        case ServiceCurve::GlvOpf:
            h = hardenedMulGlv(ctx.glvOpf, r.privateKey, r.peer);
            break;
        default:
            fail(r, ServiceStatus::InvalidRequest,
                 "hardened derive requires a curve with a known order");
            return;
        }
        if (!h.ok) {
            fail(r, ServiceStatus::HardenedFailed, h.reason);
            return;
        }
        r.pointOut = h.point;
        r.status = ServiceStatus::Ok;
        return;
    }

    switch (r.curve) {
    case ServiceCurve::MontgomeryOpf: {
        if (!validateX(ctx.montgomeryOpf, r.peerX)) {
            fail(r, ServiceStatus::InvalidRequest, "peer x invalid");
            return;
        }
        if (r.privateKey.isZero()) {
            fail(r, ServiceStatus::InvalidRequest, "zero scalar");
            return;
        }
        auto x = ctx.montgomeryOpf.ladder(r.privateKey, r.peerX);
        if (!x) {
            fail(r, ServiceStatus::InvalidRequest,
                 "derived the point at infinity");
            return;
        }
        r.xOut = *x;
        r.status = ServiceStatus::Ok;
        return;
    }
    case ServiceCurve::EdwardsOpf: {
        if (!validatePoint(ctx.edwardsOpf, r.peer)) {
            fail(r, ServiceStatus::InvalidRequest, "peer point invalid");
            return;
        }
        if (r.privateKey.isZero()) {
            fail(r, ServiceStatus::InvalidRequest, "zero scalar");
            return;
        }
        r.pointOut = ctx.edwardsOpf.mulNaf(r.privateKey, r.peer);
        r.status = ServiceStatus::Ok;
        return;
    }
    default: {
        const WeierstrassCurve *c = ctx.weierstrassFor(r.curve);
        const BigUInt *n = S ? &S->order() : nullptr;
        if (!validatePoint(*c, r.peer, n)) {
            fail(r, ServiceStatus::InvalidRequest, "peer point invalid");
            return;
        }
        if (n ? !validScalar(r.privateKey, *n) : r.privateKey.isZero()) {
            fail(r, ServiceStatus::InvalidRequest, "scalar out of range");
            return;
        }
        AffinePoint out = S ? S->mul(r.privateKey, r.peer)
                            : c->mulNaf(r.privateKey, r.peer);
        if (out.inf) {
            fail(r, ServiceStatus::InvalidRequest,
                 "derived the point at infinity");
            return;
        }
        r.pointOut = out;
        r.status = ServiceStatus::Ok;
        return;
    }
    }
}

void
EccService::processSignBatch(WorkerContext &ctx,
                             std::vector<ServiceRequest *> &reqs)
{
    ServiceCurve curve = reqs[0]->curve;
    Ecdsa *S = ctx.signerFor(curve);
    const WeierstrassCurve &c = S->curve();
    const PrimeField &fn = *ctx.scalarFieldFor(curve);
    const BigUInt &n = S->order();
    const FixedBaseComb *comb = S->fixedBase();

    struct Item
    {
        ServiceRequest *req;
        BigUInt e;        ///< hash scalar (Sign only)
        size_t nonceSlot; ///< index into nonceInv; SIZE_MAX for Keygen
    };
    std::vector<Item> items;
    std::vector<BigUInt> scalars;      ///< nonce k (Sign) / key d (Keygen)
    std::vector<JacobianPoint> points; ///< k*G resp. d*G
    std::vector<BigUInt> nonceInv;     ///< Sign nonces, inverted in batch
    items.reserve(reqs.size());
    scalars.reserve(reqs.size());
    points.reserve(reqs.size());

    for (ServiceRequest *rp : reqs) {
        ServiceRequest &r = *rp;
        BigUInt k;
        Item it{rp, BigUInt(0), SIZE_MAX};
        if (r.op == ServiceOp::Sign) {
            if (!validScalar(r.privateKey, n)) {
                fail(r, ServiceStatus::InvalidRequest,
                     "private key out of range");
                continue;
            }
            if (r.nonce.isZero()) {
                k = randomScalar(ctx.rng, n);
            } else if (validScalar(r.nonce, n)) {
                k = r.nonce;
            } else {
                fail(r, ServiceStatus::InvalidRequest, "nonce out of range");
                continue;
            }
            it.e = S->hashToScalar(r.message);
            it.nonceSlot = nonceInv.size();
            nonceInv.push_back(k);
        } else { // Keygen
            if (r.privateKey.isZero()) {
                k = randomScalar(ctx.rng, n);
            } else if (validScalar(r.privateKey, n)) {
                k = r.privateKey;
            } else {
                fail(r, ServiceStatus::InvalidRequest,
                     "forced private key out of range");
                continue;
            }
        }
        scalars.push_back(k);
        points.push_back(comb ? comb->mulJacobian(c, k)
                              : c.mulNafJacobian(k, S->generator()));
        items.push_back(std::move(it));
    }
    if (items.empty())
        return;

    // The batch's two shared inversions: one field inversion converts
    // every R/Q point to affine, one mod-n inversion serves every
    // nonce.
    std::vector<AffinePoint> affs = c.toAffineBatch(points);
    invBatch(fn, nonceInv);

    for (size_t i = 0; i < items.size(); i++) {
        ServiceRequest &r = *items[i].req;
        const AffinePoint &pt = affs[i];
        if (r.op == ServiceOp::Keygen) {
            if (!validatePoint(c, pt, &n)) {
                fail(r, ServiceStatus::InvalidRequest,
                     "generated public key failed validation");
                continue;
            }
            r.keyOut.d = scalars[i];
            r.keyOut.q = pt;
            r.status = ServiceStatus::Ok;
            continue;
        }
        bool degenerate = pt.inf;
        BigUInt rr;
        if (!degenerate) {
            rr = pt.x % n;
            degenerate = rr.isZero();
        }
        BigUInt s;
        if (!degenerate) {
            const BigUInt &kinv = nonceInv[items[i].nonceSlot];
            s = fn.mul(kinv, fn.add(items[i].e, fn.mul(rr, r.privateKey)));
            degenerate = s.isZero();
        }
        if (degenerate) {
            if (!r.nonce.isZero()) {
                fail(r, ServiceStatus::InvalidRequest, "degenerate nonce");
                continue;
            }
            // Negligible-probability path: redraw per call.
            r.sigOut = S->sign(r.message, r.privateKey, ctx.rng);
            r.status = ServiceStatus::Ok;
            continue;
        }
        r.sigOut = EcdsaSignature{rr, s};
        r.status = ServiceStatus::Ok;
    }
}

void
EccService::processDeriveWeierstrassBatch(WorkerContext &ctx,
                                          std::vector<ServiceRequest *> &reqs)
{
    ServiceCurve curve = reqs[0]->curve;
    const WeierstrassCurve *c = ctx.weierstrassFor(curve);
    Ecdsa *S = ctx.signerFor(curve);
    const BigUInt *n = S ? &S->order() : nullptr;

    std::vector<ServiceRequest *> live;
    std::vector<JacobianPoint> points;
    live.reserve(reqs.size());
    points.reserve(reqs.size());
    for (ServiceRequest *rp : reqs) {
        ServiceRequest &r = *rp;
        if (!validatePoint(*c, r.peer, n)) {
            fail(r, ServiceStatus::InvalidRequest, "peer point invalid");
            continue;
        }
        if (n ? !validScalar(r.privateKey, *n) : r.privateKey.isZero()) {
            fail(r, ServiceStatus::InvalidRequest, "scalar out of range");
            continue;
        }
        points.push_back(c->mulNafJacobian(r.privateKey, r.peer));
        live.push_back(rp);
    }
    if (live.empty())
        return;

    std::vector<AffinePoint> affs = c->toAffineBatch(points);
    for (size_t i = 0; i < live.size(); i++) {
        if (affs[i].inf) {
            fail(*live[i], ServiceStatus::InvalidRequest,
                 "derived the point at infinity");
            continue;
        }
        live[i]->pointOut = affs[i];
        live[i]->status = ServiceStatus::Ok;
    }
}

void
EccService::processDeriveMontgomeryBatch(WorkerContext &ctx,
                                         std::vector<ServiceRequest *> &reqs)
{
    const MontgomeryCurve &c = ctx.montgomeryOpf;
    const PrimeField &f = ctx.opfField;

    std::vector<ServiceRequest *> live;
    std::vector<XzPoint> xz;
    live.reserve(reqs.size());
    xz.reserve(reqs.size());
    for (ServiceRequest *rp : reqs) {
        ServiceRequest &r = *rp;
        if (!validateX(c, r.peerX)) {
            fail(r, ServiceStatus::InvalidRequest, "peer x invalid");
            continue;
        }
        if (r.privateKey.isZero()) {
            fail(r, ServiceStatus::InvalidRequest, "zero scalar");
            continue;
        }
        xz.push_back(c.ladderXz(r.privateKey, r.peerX));
        live.push_back(rp);
    }
    if (live.empty())
        return;

    // One shared inversion for every ladder's final X/Z division;
    // invBatch's zero passthrough marks the infinity results.
    std::vector<BigUInt> zs;
    zs.reserve(xz.size());
    for (const XzPoint &p : xz)
        zs.push_back(p.z);
    invBatch(f, zs);

    for (size_t i = 0; i < live.size(); i++) {
        if (xz[i].z.isZero()) {
            fail(*live[i], ServiceStatus::InvalidRequest,
                 "derived the point at infinity");
            continue;
        }
        live[i]->xOut = f.mul(xz[i].x, zs[i]);
        live[i]->status = ServiceStatus::Ok;
    }
}

void
EccService::processDeriveEdwardsBatch(WorkerContext &ctx,
                                      std::vector<ServiceRequest *> &reqs)
{
    const EdwardsCurve &c = ctx.edwardsOpf;

    std::vector<ServiceRequest *> live;
    std::vector<ExtendedPoint> points;
    live.reserve(reqs.size());
    points.reserve(reqs.size());
    for (ServiceRequest *rp : reqs) {
        ServiceRequest &r = *rp;
        if (!validatePoint(c, r.peer)) {
            fail(r, ServiceStatus::InvalidRequest, "peer point invalid");
            continue;
        }
        if (r.privateKey.isZero()) {
            fail(r, ServiceStatus::InvalidRequest, "zero scalar");
            continue;
        }
        points.push_back(c.mulNafExtended(r.privateKey, r.peer));
        live.push_back(rp);
    }
    if (live.empty())
        return;

    std::vector<AffinePoint> affs = c.toAffineBatch(points);
    for (size_t i = 0; i < live.size(); i++) {
        live[i]->pointOut = affs[i];
        live[i]->status = ServiceStatus::Ok;
    }
}

void
EccService::publishMetrics(MetricsRegistry &reg) const
{
    auto raise = [&reg](const char *name, const MetricLabels &l, uint64_t v) {
        Counter &cnt = reg.counter(name, l);
        if (v > cnt.value())
            cnt.inc(v - cnt.value());
    };

    for (size_t i = 0; i < stats.size(); i++) {
        const WorkerStats &st = *stats[i];
        MetricLabels wl{{"worker", std::to_string(i)}};
        reg.gauge("service_queue_depth", wl)
            .set(double(queues[i]->sizeApprox()));
        raise("service_ops", wl, st.ops.load(std::memory_order_relaxed));
        raise("service_batches", wl,
              st.batches.load(std::memory_order_relaxed));
        raise("service_failed", wl,
              st.failed.load(std::memory_order_relaxed));
        static const ServiceOp kOps[4] = {ServiceOp::Sign, ServiceOp::Verify,
                                          ServiceOp::Keygen,
                                          ServiceOp::Derive};
        for (ServiceOp op : kOps) {
            MetricLabels ol{{"op", serviceOpName(op)},
                            {"worker", std::to_string(i)}};
            raise("service_ops_by_kind", ol,
                  st.opsByKind[size_t(op)].load(std::memory_order_relaxed));
        }

        // Bucket-faithful histogram re-emission: raise each registry
        // bucket to the worker's level by observing the bucket's own
        // upper bound (counts stay exact; sums approximate).
        std::lock_guard<std::mutex> lk(st.histMutex);
        auto emit = [&reg, &wl](const char *name, const Histogram &src) {
            Histogram &dst = reg.histogram(name, src.bounds(), wl);
            for (size_t b = 0; b <= src.bounds().size(); b++) {
                uint64_t have = dst.bucketCount(b);
                uint64_t want = src.bucketCount(b);
                if (want > have) {
                    double v = b < src.bounds().size()
                                   ? src.bounds()[b]
                                   : src.bounds().back() + 1.0;
                    dst.observe(v, want - have);
                }
            }
        };
        emit("service_latency_us", st.latencyUs);
        emit("service_batch_occupancy", st.occupancy);
        reg.gauge("service_latency_p50_us", wl)
            .set(st.latencyUs.percentile(50));
        reg.gauge("service_latency_p99_us", wl)
            .set(st.latencyUs.percentile(99));
        reg.gauge("service_batch_occupancy_mean", wl)
            .set(st.occupancy.mean());
    }
}

double
EccService::latencyPercentileUs(double p) const
{
    Histogram merged(latencyBoundsUs());
    for (const auto &stp : stats) {
        std::lock_guard<std::mutex> lk(stp->histMutex);
        const Histogram &src = stp->latencyUs;
        for (size_t b = 0; b <= src.bounds().size(); b++) {
            uint64_t cnt = src.bucketCount(b);
            if (cnt == 0)
                continue;
            double v = b < src.bounds().size() ? src.bounds()[b]
                                               : src.bounds().back() + 1.0;
            merged.observe(v, cnt);
        }
    }
    return merged.percentile(p);
}

} // namespace jaavr
