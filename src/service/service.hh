/**
 * @file
 * EccService: the long-running batched ECC server (DESIGN.md §14).
 *
 * Architecture: a fixed pool of worker threads, each with a private
 * WorkerContext (no shared mutable state — see context.hh) and its
 * own bounded lock-free MPSC request queue. Submitters shard across
 * the queues (round-robin by default, sticky via
 * ServiceRequest::shardHint), so the hot path is one CAS per submit
 * and workers never contend with each other.
 *
 * Amortization: a worker drains up to `batchMax` requests per wake
 * and processes them as a micro-batch. With `amortize` on (the
 * default), fixed-base multiplications go through comb tables built
 * once at startup, a batch's Jacobian/extended results are converted
 * to affine with one shared Montgomery batched inversion, the ECDSA
 * nonce inverses of a batch share one mod-n inversion, and the
 * x-only ladder results share one X/Z division. With `amortize` off
 * every request takes the pre-existing single-call library path —
 * that configuration is the "batch size 1" baseline bench_service
 * compares against.
 *
 * Completion is by request: the worker writes the outputs, then
 * release-stores ServiceRequest::done; EccService::wait spins on it
 * with an acquire load. Latency (submit to completion) and batch
 * occupancy land in per-worker histograms published through
 * publishMetrics.
 */

#ifndef JAAVR_SERVICE_SERVICE_HH
#define JAAVR_SERVICE_SERVICE_HH

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/flight.hh"
#include "obs/trace.hh"
#include "service/context.hh"
#include "service/queue.hh"
#include "service/request.hh"
#include "support/metrics.hh"

namespace jaavr
{

struct ServiceConfig
{
    unsigned workers = 2;        ///< worker threads (>= 1)
    size_t queueCapacity = 1024; ///< per-worker queue slots (pow2-rounded)
    size_t batchMax = 16;        ///< micro-batch drain limit (>= 1)
    bool amortize = true;        ///< comb tables + shared inversions
    uint64_t rngSeed = 1;        ///< base seed; worker i uses seed + i
    CpuMode machineMode = CpuMode::ISE; ///< per-worker Machine mode
};

class EccService
{
  public:
    explicit EccService(const ServiceConfig &cfg);
    ~EccService();

    EccService(const EccService &) = delete;
    EccService &operator=(const EccService &) = delete;

    void start();
    /** Drains every queued request, then joins the workers. */
    void stop();
    bool started() const { return !threads.empty(); }

    /**
     * Enqueue a caller-owned request; false when the target shard's
     * queue is full (backpressure) or the service has been stopped.
     * Requests submitted before start() queue up and are processed
     * when the workers launch (tests use this to pin full-batch
     * occupancy deterministically). The request must outlive its
     * completion (see request.hh).
     */
    bool trySubmit(ServiceRequest *req);

    /** trySubmit that spins on backpressure; false once stopped. */
    bool submit(ServiceRequest *req);

    /** Block (spin + yield) until the request completes. */
    static void wait(const ServiceRequest &req);

    const ServiceConfig &config() const { return cfg; }
    uint64_t opsProcessed() const;

    /**
     * Publish queue depths, per-worker op/batch counters, and the
     * latency/occupancy histograms into @p reg. Counters are raised
     * to the current totals (idempotent across calls); histograms are
     * re-emitted bucket-faithfully (counts exact per bucket, sums
     * approximated by bucket upper bounds).
     */
    void publishMetrics(MetricsRegistry &reg) const;

    /** Per-worker latency percentile estimate in microseconds. */
    double latencyPercentileUs(double p) const;

    /**
     * Attach a span tracer (nullptr detaches); call before start().
     * While the tracer is enabled, trySubmit stamps a fresh trace ID
     * on every request and each worker records one "drain" span per
     * micro-batch with per-request child spans (queue-wait /
     * drain-wait stage arguments) plus per-group amortization spans
     * into its own ring. Attached-but-disabled costs a relaxed load
     * per submit and per worker wake — results stay bit-identical
     * either way (pinned by tests/test_obs.cc).
     */
    void setTracer(obs::SpanTracer *t);

    /**
     * Attach a flight recorder (nullptr detaches); call before
     * start(). Workers record verify-mismatch / hardened-failure
     * events (and fire a dump trigger); trySubmit records the onset
     * of queue-full backpressure. Event times are logical per-worker
     * op ordinals, never the wall clock.
     */
    void setFlightRecorder(obs::FlightRecorder *f);

    /** trySubmit refusals due to a full shard queue (backpressure). */
    uint64_t backpressureRefusals() const
    {
        return refusals.load(std::memory_order_relaxed);
    }

  private:
    struct WorkerStats
    {
        std::atomic<uint64_t> ops{0};
        std::atomic<uint64_t> batches{0};
        std::atomic<uint64_t> opsByKind[4] = {};
        std::atomic<uint64_t> failed{0};
        // The histograms are plain (metrics.hh is deliberately not
        // concurrent): the owning worker records under this mutex and
        // readers snapshot under it.
        mutable std::mutex histMutex;
        Histogram latencyUs;
        Histogram occupancy;

        WorkerStats(std::vector<double> latency_bounds,
                    std::vector<double> occupancy_bounds)
            : latencyUs(std::move(latency_bounds)),
              occupancy(std::move(occupancy_bounds))
        {}
    };

    void workerLoop(unsigned idx);
    void processBatch(WorkerContext &ctx, WorkerStats &st,
                      std::vector<ServiceRequest *> &batch,
                      unsigned idx);
    void processSingle(WorkerContext &ctx, ServiceRequest &req);
    void processSignBatch(WorkerContext &ctx,
                          std::vector<ServiceRequest *> &reqs);
    void processDeriveWeierstrassBatch(WorkerContext &ctx,
                                       std::vector<ServiceRequest *> &reqs);
    void processDeriveMontgomeryBatch(WorkerContext &ctx,
                                      std::vector<ServiceRequest *> &reqs);
    void processDeriveEdwardsBatch(WorkerContext &ctx,
                                   std::vector<ServiceRequest *> &reqs);

    ServiceConfig cfg;
    ServiceTables tables;
    std::vector<std::unique_ptr<WorkerContext>> contexts;
    std::vector<std::unique_ptr<BoundedMpmcQueue<ServiceRequest *>>> queues;
    std::vector<std::unique_ptr<WorkerStats>> stats;
    std::vector<std::thread> threads;
    std::atomic<bool> accepting{true};
    std::atomic<bool> running{false};
    std::atomic<uint64_t> roundRobin{0};

    // Observability (src/obs/): optional, attach before start().
    obs::SpanTracer *tracer = nullptr;
    obs::FlightRecorder *flight = nullptr;
    std::vector<obs::SpanRing *> traceRings;        // per worker
    std::vector<obs::FlightRecorder::Source *> flightSources;
    obs::FlightRecorder::Source *flightSubmit = nullptr;
    std::atomic<uint64_t> refusals{0};
};

} // namespace jaavr

#endif // JAAVR_SERVICE_SERVICE_HH
