/**
 * @file
 * Request/response record of the ECC service (DESIGN.md §14).
 *
 * A ServiceRequest is caller-owned and single-use: the caller fills
 * the inputs, submits the pointer through EccService, and the record
 * must stay alive and untouched until the service flips `done` (see
 * EccService::wait). All output fields are written by exactly one
 * worker thread before the release-store on `done`, so a caller that
 * observed done == true (acquire) reads them race-free.
 */

#ifndef JAAVR_SERVICE_REQUEST_HH
#define JAAVR_SERVICE_REQUEST_HH

#include <atomic>
#include <chrono>
#include <string>

#include "curves/ecdsa.hh"
#include "curves/point.hh"

namespace jaavr
{

/** Operation requested from the service. */
enum class ServiceOp : uint8_t
{
    Sign,    ///< ECDSA sign `message` under `privateKey`
    Verify,  ///< ECDSA verify `signature` on `message` by `peer`
    Keygen,  ///< fresh (or privateKey-forced) ECDSA key pair
    Derive,  ///< ECDH: privateKey * peer (x-only on Montgomery)
};

/** Curve family/instance a request targets. */
enum class ServiceCurve : uint8_t
{
    Secp160r1,       ///< standardized Weierstrass (known order)
    Secp160k1,       ///< standardized GLV curve (known order)
    GlvOpf,          ///< constructed GLV curve (known CM order)
    WeierstrassOpf,  ///< OPF a = -3 curve (order unpublished)
    MontgomeryOpf,   ///< OPF Montgomery curve, x-only (order unpublished)
    EdwardsOpf,      ///< OPF twisted Edwards curve (order unpublished)
};

const char *serviceOpName(ServiceOp op);
const char *serviceCurveName(ServiceCurve c);

/** Completion status of a processed request. */
enum class ServiceStatus : uint8_t
{
    Pending,        ///< not yet processed
    Ok,             ///< outputs valid (for Verify, consult verifyOk)
    InvalidRequest, ///< bad inputs or unsupported op/curve combination
    HardenedFailed, ///< hardened recomputation/validation disagreed
};

struct ServiceRequest
{
    // --- inputs (set by the caller before submit) -------------------
    ServiceOp op = ServiceOp::Sign;
    ServiceCurve curve = ServiceCurve::Secp160r1;
    /** Route hardenable ops through the validated/recomputed path. */
    bool hardened = false;
    std::string message;   ///< Sign/Verify payload
    BigUInt privateKey;    ///< Sign/Derive scalar; Keygen force (0 = draw)
    /**
     * Explicit ECDSA nonce for reproducibility tests; zero (default)
     * draws from the worker's seeded Rng. A degenerate explicit nonce
     * (r or s would be zero) fails with InvalidRequest instead of
     * silently redrawing.
     */
    BigUInt nonce;
    EcdsaSignature signature; ///< Verify input
    AffinePoint peer;         ///< Verify public key / Derive peer point
    BigUInt peerX;            ///< Derive peer for the x-only ladder
    /**
     * Shard routing hint: requests with equal hints land on the same
     * worker (key affinity keeps a client's traffic in one batch
     * stream). The default (~0) round-robins across workers.
     */
    uint64_t shardHint = ~uint64_t(0);

    // --- outputs (written by the worker, then done is released) -----
    ServiceStatus status = ServiceStatus::Pending;
    std::string error;        ///< first failed check when not Ok
    EcdsaSignature sigOut;    ///< Sign
    bool verifyOk = false;    ///< Verify
    EcdsaKeyPair keyOut;      ///< Keygen
    AffinePoint pointOut;     ///< Derive (full-point families)
    BigUInt xOut;             ///< Derive (x-only Montgomery)

    // --- bookkeeping (set by the service) ---------------------------
    std::chrono::steady_clock::time_point enqueuedAt;
    /**
     * Tracing identity (src/obs/): assigned at submit when a span
     * tracer is attached and enabled, 0 otherwise. Carried through
     * shard routing → queue wait → batch drain so the per-request
     * span and any downstream spans share one trace.
     */
    uint64_t traceId = 0;
    /** Tracer µs when the worker popped the request (tracing only). */
    uint64_t poppedAtUs = 0;
    std::atomic<bool> done{false};
};

} // namespace jaavr

#endif // JAAVR_SERVICE_REQUEST_HH
