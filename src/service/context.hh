/**
 * @file
 * Per-worker execution context of the ECC service (DESIGN.md §14).
 *
 * The service's scaling contract is that worker contexts share
 * *nothing mutable*: each context owns private PrimeField instances
 * (the fields carry a per-instance mutable op-counter attachment, so
 * sharing one across threads would race), private curve objects
 * built from a snapshot of the standard-curve parameters, private
 * Ecdsa signers, a private seeded Rng, and a private AVR Machine
 * (the ISS is entirely member-state, so per-worker Machines run
 * concurrently with bit-identical results — the concurrency test
 * pins this). The only shared state is immutable: the parameter
 * snapshot and the fixed-base comb tables, both built once at
 * service startup.
 */

#ifndef JAAVR_SERVICE_CONTEXT_HH
#define JAAVR_SERVICE_CONTEXT_HH

#include <memory>

#include "avr/machine.hh"
#include "curves/ecdsa.hh"
#include "curves/edwards.hh"
#include "curves/fixed_base.hh"
#include "curves/glv.hh"
#include "curves/montgomery.hh"
#include "curves/standard_curves.hh"
#include "curves/weierstrass.hh"
#include "field/secp160.hh"
#include "service/request.hh"
#include "support/random.hh"

namespace jaavr
{

/**
 * Immutable snapshot of every curve parameter the service needs,
 * captured once per process from the lazy standard-curve singletons
 * (so the expensive GLV curve construction runs exactly once) and
 * then used to build as many independent worker contexts as needed.
 */
struct ServiceCurveSet
{
    // secp160r1
    BigUInt r1A, r1B;
    AffinePoint r1G;
    BigUInt r1N;
    // secp160k1 (GLV family, published constants)
    GlvParams k1Params;
    // constructed GLV curve and its OPF prime
    BigUInt glvP;
    GlvParams glvParams;
    // paper OPF prime and its three curves
    BigUInt opfP;
    BigUInt wA, wB;
    AffinePoint wBase;
    BigUInt mA, mB;
    BigUInt mBaseX;
    BigUInt eA, eD;
    AffinePoint eBase;

    /** The process-wide snapshot (captured on first use). */
    static const ServiceCurveSet &instance();
};

/** True iff the curve's prime subgroup order is known (and so ECDSA
 *  sign/verify/keygen and hardened derive are available on it). */
bool serviceOrderKnown(ServiceCurve c);

/**
 * One worker's private crypto state. Construction is cheap relative
 * to service lifetime (a few scalar multiplications of self-checks);
 * contexts are independent and never touched by two threads at once.
 */
class WorkerContext
{
  public:
    explicit WorkerContext(uint64_t rng_seed,
                           CpuMode machine_mode = CpuMode::ISE);

    WorkerContext(const WorkerContext &) = delete;
    WorkerContext &operator=(const WorkerContext &) = delete;

    // Fields first: the curves below hold references into them.
    Secp160r1Field r1Field;
    Secp160k1Field k1Field;
    PrimeField glvField;
    PrimeField opfField;
    // Scalar fields mod the subgroup orders, for the batched nonce
    // inversions (n is prime, so PrimeField applies as-is).
    PrimeField r1Scalar;
    PrimeField k1Scalar;
    PrimeField glvScalar;

    WeierstrassCurve secp160r1;
    GlvCurve secp160k1;
    GlvCurve glvOpf;
    WeierstrassCurve weierstrassOpf;
    MontgomeryCurve montgomeryOpf;
    EdwardsCurve edwardsOpf;

    Ecdsa ecdsaR1;
    Ecdsa ecdsaK1;
    Ecdsa ecdsaGlv;

    Rng rng;
    Machine machine;  ///< per-worker ISS instance (poolable by design)

    /** The ECDSA signer for @p c, or nullptr if its order is unknown. */
    Ecdsa *signerFor(ServiceCurve c);

    /** Scalar field mod n for @p c (same availability as signerFor). */
    const PrimeField *scalarFieldFor(ServiceCurve c) const;

    /** The Weierstrass(-family) curve object, or nullptr. */
    const WeierstrassCurve *weierstrassFor(ServiceCurve c) const;
};

/**
 * The fixed-base comb tables for the order-known generators, built
 * once per service (dogfooding the batched affine conversion) and
 * shared read-only by every worker.
 */
struct ServiceTables
{
    std::unique_ptr<FixedBaseComb> r1;
    std::unique_ptr<FixedBaseComb> k1;
    std::unique_ptr<FixedBaseComb> glv;

    /** Build all three from @p snap via a throwaway context. */
    static ServiceTables build(const ServiceCurveSet &snap,
                               unsigned width = 5);
};

} // namespace jaavr

#endif // JAAVR_SERVICE_CONTEXT_HH
