/**
 * @file
 * Word-level Optimal Prime Field arithmetic — a faithful host model of
 * the paper's AVR OPF library (Section III).
 *
 * Values are arrays of s 32-bit words, kept *incompletely reduced* in
 * [0, 2^(32 s)) exactly as on the target: the paper's add/sub use the
 * carry-bit shortcut with a branch-less double subtraction of c*p that
 * only touches the least and most significant words (plus the 2^-32
 * borrow-propagation corner case), and multiplication is the Finely
 * Integrated Product Scanning (FIPS) Montgomery method with the
 * low-weight reduction that needs only s^2 + s word MACs.
 *
 * The class additionally checks the paper's structural claims at run
 * time: the column accumulator never exceeds 72 bits, and the MAC
 * counters expose the s^2 + s total. The generated AVR assembly in
 * src/avrgen is validated word-for-word against this model.
 */

#ifndef JAAVR_FIELD_OPF_FIELD_HH
#define JAAVR_FIELD_OPF_FIELD_HH

#include <cstdint>
#include <vector>

#include "bigint/big_uint.hh"
#include "nt/opf_prime.hh"

namespace jaavr
{

/** Statistics of one word-level OPF operation. */
struct OpfOpStats
{
    uint64_t wordMacs = 0;      ///< (32x32)-bit multiply-accumulates
    uint64_t borrowRipples = 0; ///< rare LSW-borrow propagation events
};

class OpfField
{
  public:
    using Words = std::vector<uint32_t>;

    explicit OpfField(const OpfPrime &prime);

    const OpfPrime &prime() const { return opf; }
    const BigUInt &modulus() const { return opf.p; }

    /** Number of 32-bit words per element. */
    size_t words() const { return s; }

    /** Bits per element (32 * s). */
    unsigned bits() const { return 32 * static_cast<unsigned>(s); }

    /** Montgomery radix R = 2^(32 s) mod p. */
    const BigUInt &montR() const { return rModP; }

    /** Import a residue (< p) into the incomplete word representation. */
    Words fromBig(const BigUInt &v) const;

    /** Exact value of a (possibly incompletely reduced) element. */
    BigUInt toBig(const Words &a) const;

    /** Canonical residue in [0, p). */
    BigUInt canonical(const Words &a) const { return toBig(a) % opf.p; }

    /** Convert into the Montgomery domain: returns a * R mod p. */
    Words toMont(const BigUInt &a) const;

    /** Convert out of the Montgomery domain (multiplies by 1). */
    BigUInt fromMont(const Words &a) const;

    /**
     * Incomplete modular addition: result = a + b (mod p), in
     * [0, 2^(32 s)). Branch-less double conditional subtraction.
     */
    Words add(const Words &a, const Words &b) const;

    /** Incomplete modular subtraction (double conditional addition). */
    Words sub(const Words &a, const Words &b) const;

    /**
     * FIPS Montgomery multiplication: result = a * b * R^-1 (mod p),
     * incompletely reduced. Operands may be incompletely reduced.
     */
    Words montMul(const Words &a, const Words &b) const;

    /** Montgomery squaring (same path; kept separate for counters). */
    Words montSqr(const Words &a) const { return montMul(a, a); }

    /** Statistics of the most recent operation. */
    const OpfOpStats &lastStats() const { return stats; }

    /**
     * Maximum accumulator width (bits) observed across all montMul
     * calls on this field; the paper's hardware accumulator is 72 bits
     * wide and a property test asserts this never exceeds it.
     */
    unsigned maxAccBits() const { return maxAccBitsSeen; }

  private:
    /** Branch-less subtraction of c * p touching only LSW and MSW. */
    void subtractCp(Words &a, uint32_t &c) const;

    /** Branch-less addition of c * p (for modular subtraction). */
    void addCp(Words &a, uint32_t &c) const;

    OpfPrime opf;
    size_t s;           ///< words per element
    uint32_t pTopWord;  ///< p's most significant word: u << 16
    BigUInt rModP;      ///< R mod p

    mutable OpfOpStats stats;
    mutable unsigned maxAccBitsSeen = 0;
};

} // namespace jaavr

#endif // JAAVR_FIELD_OPF_FIELD_HH
