#include "field/montgomery_domain.hh"

#include "support/logging.hh"

namespace jaavr
{

namespace
{

/** -x^-1 mod 2^32 for odd x (Newton iteration on the 2-adic inverse). */
uint32_t
negInvMod2_32(uint32_t x)
{
    uint32_t inv = x;  // correct to 3 bits
    for (int i = 0; i < 4; i++)
        inv *= 2 - x * inv;  // doubles the precision each step
    return ~inv + 1;  // negate
}

} // anonymous namespace

MontgomeryDomain::MontgomeryDomain(const BigUInt &modulus) : m(modulus)
{
    if (!m.isOdd())
        fatal("MontgomeryDomain: modulus must be odd");
    s = (m.bitLength() + 31) / 32;
    n0 = negInvMod2_32(m.low32());
    rModM = (BigUInt(1) << (32 * static_cast<unsigned>(s))) % m;
    // Defensive: n0 = -m^-1, so m * n0 = -1 (mod 2^32).
    if (static_cast<uint32_t>(m.low32() * n0) != 0xffffffffu)
        panic("MontgomeryDomain: n0 computation failed");
}

MontgomeryDomain::Words
MontgomeryDomain::fromBig(const BigUInt &v) const
{
    return v.toWords(s);
}

BigUInt
MontgomeryDomain::toBig(const Words &a) const
{
    return BigUInt::fromWords(a);
}

MontgomeryDomain::Words
MontgomeryDomain::toMont(const BigUInt &a) const
{
    return fromBig((a % m).mulMod(rModM, m));
}

BigUInt
MontgomeryDomain::fromMont(const Words &a) const
{
    Words one(s, 0);
    one[0] = 1;
    return toBig(montMul(a, one));
}

MontgomeryDomain::Words
MontgomeryDomain::montMul(const Words &a, const Words &b) const
{
    wordMacs = 0;
    Words p = m.toWords(s);
    Words q(s, 0);
    Words out(s, 0);
    unsigned __int128 acc = 0;

    // Product-scanning FIPS: first half computes the q digits.
    for (size_t i = 0; i < s; i++) {
        for (size_t j = 0; j <= i; j++) {
            acc += static_cast<uint64_t>(a[j]) * b[i - j];
            wordMacs++;
        }
        for (size_t j = 0; j < i; j++) {
            acc += static_cast<uint64_t>(q[j]) * p[i - j];
            wordMacs++;
        }
        q[i] = static_cast<uint32_t>(acc) * n0;
        wordMacs++;  // the q-digit multiplication by n0'
        acc += static_cast<uint64_t>(q[i]) * p[0];
        wordMacs++;
        if (static_cast<uint32_t>(acc) != 0)
            panic("MontgomeryDomain::montMul: column %zu not cleared", i);
        acc >>= 32;
    }
    // Second half emits the result words.
    for (size_t i = s; i < 2 * s; i++) {
        for (size_t j = i - s + 1; j < s; j++) {
            acc += static_cast<uint64_t>(a[j]) * b[i - j];
            wordMacs++;
        }
        for (size_t j = i - s + 1; j < s; j++) {
            acc += static_cast<uint64_t>(q[j]) * p[i - j];
            wordMacs++;
        }
        out[i - s] = static_cast<uint32_t>(acc);
        acc >>= 32;
    }

    // Final conditional subtraction (general m: full-width compare).
    BigUInt t = toBig(out) + (BigUInt(static_cast<uint64_t>(acc))
                              << (32 * static_cast<unsigned>(s)));
    if (t >= m)
        t = t - m;
    return t.toWords(s);
}

MontgomeryDomain::Words
MontgomeryDomain::montExp(const Words &base, const BigUInt &e) const
{
    Words result = fromBig(rModM);  // 1 in the domain
    for (size_t i = e.bitLength(); i-- > 0;) {
        result = montMul(result, result);
        if (e.bit(i))
            result = montMul(result, base);
    }
    return result;
}

} // namespace jaavr
