/**
 * @file
 * Field-operation counters.
 *
 * The evaluation methodology (DESIGN.md §4.3) runs the real curve
 * arithmetic on the host while charging ISS-measured cycle costs per
 * field operation; these counters record exactly which operations a
 * scalar multiplication performed, including all data-dependent
 * effects (NAF/JSF digit patterns, DAAA dummy operations, ladder
 * steps).
 */

#ifndef JAAVR_FIELD_OP_COUNTS_HH
#define JAAVR_FIELD_OP_COUNTS_HH

#include <cstdint>

namespace jaavr
{

/** Counts of prime-field operations executed by an algorithm. */
struct FieldOpCounts
{
    uint64_t mul = 0;       ///< full field multiplications
    uint64_t sqr = 0;       ///< field squarings
    uint64_t add = 0;       ///< modular additions
    uint64_t sub = 0;       ///< modular subtractions (and negations)
    uint64_t mulSmall = 0;  ///< multiplications by a small (<=16-bit) constant
    uint64_t inv = 0;       ///< field inversions

    void
    reset()
    {
        *this = FieldOpCounts();
    }

    FieldOpCounts
    operator+(const FieldOpCounts &o) const
    {
        FieldOpCounts r = *this;
        r.mul += o.mul;
        r.sqr += o.sqr;
        r.add += o.add;
        r.sub += o.sub;
        r.mulSmall += o.mulSmall;
        r.inv += o.inv;
        return r;
    }
};

} // namespace jaavr

#endif // JAAVR_FIELD_OP_COUNTS_HH
