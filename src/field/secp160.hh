/**
 * @file
 * The SEC2 160-bit prime fields with pseudo-Mersenne fast reduction.
 *
 * secp160r1's p = 2^160 - 2^31 - 1 is the standardized reference the
 * paper benchmarks against its OPF fields: reduction works through
 * additions (2^160 = 2^31 + 1 mod p) rather than multiplications,
 * which is why it does not profit from the MAC unit the way OPFs do.
 */

#ifndef JAAVR_FIELD_SECP160_HH
#define JAAVR_FIELD_SECP160_HH

#include "field/prime_field.hh"

namespace jaavr
{

/**
 * Field of secp160r1: p = 2^160 - 2^31 - 1.
 */
class Secp160r1Field : public PrimeField
{
  public:
    Secp160r1Field();

    /** The prime 2^160 - 2^31 - 1. */
    static BigUInt primeValue();

  protected:
    BigUInt reduceProduct(const BigUInt &t) const override;
};

/**
 * Field of secp160k1: p = 2^160 - 2^32 - 21389. Used by the GLV
 * cross-check tests (secp160k1 is a standardized curve of the GLV
 * family y^2 = x^3 + b).
 */
class Secp160k1Field : public PrimeField
{
  public:
    Secp160k1Field();

    /** The prime 2^160 - 2^32 - 21389. */
    static BigUInt primeValue();

  protected:
    BigUInt reduceProduct(const BigUInt &t) const override;
};

/**
 * Shared pseudo-Mersenne reduction: fold t modulo p = 2^bits - c
 * using 2^bits = c (mod p).
 */
BigUInt pseudoMersenneReduce(const BigUInt &t, const BigUInt &p,
                             unsigned bits, const BigUInt &c);

} // namespace jaavr

#endif // JAAVR_FIELD_SECP160_HH
