/**
 * @file
 * Generic prime-field arithmetic context (the host "golden model").
 *
 * Elements are BigUInt values kept in the least non-negative residue
 * range [0, p). Subclasses may override reduceProduct() with a fast
 * prime-specific reduction (pseudo-Mersenne for secp160r1); the OPF
 * word-level model in opf_field.hh mirrors the AVR implementation and
 * is cross-checked against this class.
 */

#ifndef JAAVR_FIELD_PRIME_FIELD_HH
#define JAAVR_FIELD_PRIME_FIELD_HH

#include <optional>

#include "bigint/big_int.hh"
#include "bigint/big_uint.hh"
#include "field/op_counts.hh"
#include "support/random.hh"

namespace jaavr
{

class PrimeField
{
  public:
    /** @param p odd prime modulus (primality is the caller's duty). */
    explicit PrimeField(const BigUInt &p);
    virtual ~PrimeField() = default;

    const BigUInt &modulus() const { return p; }
    unsigned bits() const { return pBits; }

    BigUInt add(const BigUInt &a, const BigUInt &b) const;
    BigUInt sub(const BigUInt &a, const BigUInt &b) const;
    BigUInt neg(const BigUInt &a) const;
    BigUInt mul(const BigUInt &a, const BigUInt &b) const;
    BigUInt sqr(const BigUInt &a) const;

    /**
     * Multiplication by a small constant (at most 16 bits). Counted
     * separately: the paper measures it at 0.25-0.3 of a full field
     * multiplication (Section II-B).
     */
    BigUInt mulSmall(const BigUInt &a, uint32_t c) const;

    /** Multiplicative inverse (extended Euclid); panics on zero. */
    BigUInt inv(const BigUInt &a) const;

    /** a^e mod p. Not op-counted (used only in setup paths). */
    BigUInt exp(const BigUInt &a, const BigUInt &e) const;

    /** Legendre symbol test. */
    bool isSquare(const BigUInt &a) const;

    /** Square root if it exists. */
    std::optional<BigUInt> sqrt(const BigUInt &a, Rng &rng) const;

    /** Reduce an arbitrary BigUInt into [0, p). */
    BigUInt reduce(const BigUInt &a) const { return a % p; }

    /** Reduce a signed value into [0, p). */
    BigUInt reduceSigned(const BigInt &a) const { return a.mod(p); }

    BigUInt fromUint(uint64_t v) const { return reduce(BigUInt(v)); }
    BigUInt fromHex(const std::string &h) const
    {
        return reduce(BigUInt::fromHex(h));
    }
    BigUInt random(Rng &rng) const { return BigUInt::random(rng, p); }

    /**
     * Attach an operation counter; all subsequent counted operations
     * increment it. Pass nullptr to detach.
     *
     * Thread-safety: the attachment is per-instance mutable state —
     * a field shared across threads with a counter attached would
     * race on the increments. The service layer therefore gives each
     * worker context its own PrimeField instance (they are cheap
     * value objects; see DESIGN.md §14) and never attaches a counter
     * to a shared field.
     */
    void attachCounter(FieldOpCounts *c) const { counter = c; }
    FieldOpCounts *attachedCounter() const { return counter; }

  protected:
    /** Reduce a product (< p^2) into [0, p); overridable per prime. */
    virtual BigUInt reduceProduct(const BigUInt &t) const;

    BigUInt p;
    unsigned pBits;
    mutable FieldOpCounts *counter = nullptr;
};

} // namespace jaavr

#endif // JAAVR_FIELD_PRIME_FIELD_HH
