#include "field/secp160.hh"

namespace jaavr
{

BigUInt
pseudoMersenneReduce(const BigUInt &t, const BigUInt &p, unsigned bits,
                     const BigUInt &c)
{
    BigUInt r = t;
    BigUInt top = BigUInt::powerOfTwo(bits);
    while (r >= top) {
        BigUInt hi = r >> bits;
        BigUInt lo = r - (hi << bits);
        r = hi * c + lo;
    }
    while (r >= p)
        r -= p;
    return r;
}

BigUInt
Secp160r1Field::primeValue()
{
    return BigUInt::powerOfTwo(160) - BigUInt::powerOfTwo(31) - BigUInt(1);
}

Secp160r1Field::Secp160r1Field() : PrimeField(primeValue())
{
}

BigUInt
Secp160r1Field::reduceProduct(const BigUInt &t) const
{
    // 2^160 = 2^31 + 1 (mod p)
    return pseudoMersenneReduce(
        t, p, 160, BigUInt::powerOfTwo(31) + BigUInt(1));
}

BigUInt
Secp160k1Field::primeValue()
{
    return BigUInt::powerOfTwo(160) - BigUInt::powerOfTwo(32) -
           BigUInt(21389);
}

Secp160k1Field::Secp160k1Field() : PrimeField(primeValue())
{
}

BigUInt
Secp160k1Field::reduceProduct(const BigUInt &t) const
{
    // 2^160 = 2^32 + 21389 (mod p)
    return pseudoMersenneReduce(
        t, p, 160, BigUInt::powerOfTwo(32) + BigUInt(21389));
}

} // namespace jaavr
