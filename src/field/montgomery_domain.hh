/**
 * @file
 * Word-level Montgomery arithmetic for an *arbitrary* odd modulus —
 * the general case of the OPF machinery in opf_field.hh. A general
 * s-word modulus needs 2s^2 + s word MACs per FIPS multiplication
 * (Koc-Acar-Kaliski), twice the OPF's s^2 + s: quantifying exactly
 * that difference is how the paper motivates Optimal Prime Fields,
 * and this class powers the RSA extension benchmark (Section IV-A:
 * the MAC unit "is in principle suitable to speed up ... even RSA").
 */

#ifndef JAAVR_FIELD_MONTGOMERY_DOMAIN_HH
#define JAAVR_FIELD_MONTGOMERY_DOMAIN_HH

#include <cstdint>
#include <vector>

#include "bigint/big_uint.hh"

namespace jaavr
{

class MontgomeryDomain
{
  public:
    using Words = std::vector<uint32_t>;

    /** @param modulus odd modulus of any width up to 768 bits. */
    explicit MontgomeryDomain(const BigUInt &modulus);

    const BigUInt &modulus() const { return m; }
    size_t words() const { return s; }
    unsigned bits() const { return 32 * static_cast<unsigned>(s); }

    /** -m^-1 mod 2^32 (the Montgomery constant). */
    uint32_t n0Inv() const { return n0; }

    Words fromBig(const BigUInt &v) const;
    BigUInt toBig(const Words &a) const;

    /** Into the Montgomery domain: a * R mod m, R = 2^(32 s). */
    Words toMont(const BigUInt &a) const;

    /** Out of the domain. */
    BigUInt fromMont(const Words &a) const;

    /**
     * FIPS Montgomery product a * b * R^-1 mod m (product scanning,
     * full 2s^2 + s word MACs). Result < m.
     */
    Words montMul(const Words &a, const Words &b) const;

    /** Montgomery-domain exponentiation (square-and-multiply). */
    Words montExp(const Words &base, const BigUInt &e) const;

    /** Word MACs of the most recent montMul (2s^2 + s). */
    uint64_t lastWordMacs() const { return wordMacs; }

  private:
    BigUInt m;
    size_t s;
    uint32_t n0;
    BigUInt rModM;
    mutable uint64_t wordMacs = 0;
};

} // namespace jaavr

#endif // JAAVR_FIELD_MONTGOMERY_DOMAIN_HH
