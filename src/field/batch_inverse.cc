#include "field/batch_inverse.hh"

namespace jaavr
{

size_t
invBatch(const PrimeField &f, std::vector<BigUInt> &elems)
{
    // Prefix products over the nonzero elements only: prefix[i] holds
    // the product of every nonzero element up to and including i, so
    // a zero at position i reuses prefix[i-1] and drops out of the
    // unwind entirely.
    std::vector<BigUInt> prefix;
    prefix.reserve(elems.size());
    BigUInt acc(1);
    size_t nonzero = 0;
    for (const BigUInt &e : elems) {
        if (!e.isZero()) {
            acc = f.mul(acc, e);
            nonzero++;
        }
        prefix.push_back(acc);
    }
    if (nonzero == 0)
        return 0;

    // One inversion of the full product, then unwind: before step i,
    // inv_acc = (product of nonzero elems[0..i])^-1, so multiplying
    // by the previous prefix isolates elems[i]^-1.
    BigUInt inv_acc = f.inv(acc);
    for (size_t i = elems.size(); i-- > 0;) {
        if (elems[i].isZero())
            continue;
        BigUInt prev = i == 0 ? BigUInt(1) : prefix[i - 1];
        BigUInt inv_i = f.mul(inv_acc, prev);
        inv_acc = f.mul(inv_acc, elems[i]);
        elems[i] = inv_i;
    }
    return nonzero;
}

std::vector<BigUInt>
invBatchCopy(const PrimeField &f, const std::vector<BigUInt> &elems)
{
    std::vector<BigUInt> out = elems;
    invBatch(f, out);
    return out;
}

} // namespace jaavr
