#include "field/prime_field.hh"

#include "nt/primality.hh"
#include "nt/sqrt_mod.hh"
#include "support/logging.hh"

namespace jaavr
{

PrimeField::PrimeField(const BigUInt &modulus) : p(modulus)
{
    if (p.isZero() || !p.isOdd())
        fatal("PrimeField: modulus must be an odd prime");
    pBits = p.bitLength();
}

BigUInt
PrimeField::add(const BigUInt &a, const BigUInt &b) const
{
    if (counter)
        counter->add++;
    return a.addMod(b, p);
}

BigUInt
PrimeField::sub(const BigUInt &a, const BigUInt &b) const
{
    if (counter)
        counter->sub++;
    return a.subMod(b, p);
}

BigUInt
PrimeField::neg(const BigUInt &a) const
{
    if (counter)
        counter->sub++;
    if (a.isZero())
        return a;
    return p - a;
}

BigUInt
PrimeField::mul(const BigUInt &a, const BigUInt &b) const
{
    if (counter)
        counter->mul++;
    return reduceProduct(a * b);
}

BigUInt
PrimeField::sqr(const BigUInt &a) const
{
    if (counter)
        counter->sqr++;
    return reduceProduct(a * a);
}

BigUInt
PrimeField::mulSmall(const BigUInt &a, uint32_t c) const
{
    if (counter)
        counter->mulSmall++;
    return reduceProduct(a * BigUInt(c));
}

BigUInt
PrimeField::inv(const BigUInt &a) const
{
    if (counter)
        counter->inv++;
    if (a.isZero())
        panic("PrimeField::inv of zero");
    return a.invMod(p);
}

BigUInt
PrimeField::exp(const BigUInt &a, const BigUInt &e) const
{
    return a.powMod(e, p);
}

bool
PrimeField::isSquare(const BigUInt &a) const
{
    if (a.isZero())
        return true;
    return jacobi(a, p) == 1;
}

std::optional<BigUInt>
PrimeField::sqrt(const BigUInt &a, Rng &rng) const
{
    return sqrtMod(a, p, rng);
}

BigUInt
PrimeField::reduceProduct(const BigUInt &t) const
{
    return t % p;
}

} // namespace jaavr
