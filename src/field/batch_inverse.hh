/**
 * @file
 * Montgomery's simultaneous-inversion trick as a standalone field
 * driver: invert n elements with a single field inversion plus
 * 3(n-1) multiplications.
 *
 * This generalizes the inline prefix-product unwind that
 * WeierstrassCurve::toAffineBatch carried since the wNAF table work:
 * the curve layers (Jacobian/extended batch-affine conversion, the
 * x-only ladder's final X/Z divisions) and the service layer's
 * request micro-batches all share this one driver, so every consumer
 * amortizes the expensive extended-Euclid inversion the same way
 * (DESIGN.md §14).
 */

#ifndef JAAVR_FIELD_BATCH_INVERSE_HH
#define JAAVR_FIELD_BATCH_INVERSE_HH

#include <vector>

#include "field/prime_field.hh"

namespace jaavr
{

/**
 * Replace every nonzero element of @p elems with its multiplicative
 * inverse mod @p f's modulus, using one field inversion total. Zero
 * elements pass through unchanged (zero has no inverse; callers use
 * zero as their "skip" encoding — the point at infinity's Z, an
 * absent slot), and do not perturb the inverses of their neighbours.
 * Returns the number of elements actually inverted. Sizes 0 and 1
 * degenerate gracefully (size 1 is exactly one PrimeField::inv).
 */
size_t invBatch(const PrimeField &f, std::vector<BigUInt> &elems);

/** Non-mutating convenience wrapper around invBatch. */
std::vector<BigUInt> invBatchCopy(const PrimeField &f,
                                  const std::vector<BigUInt> &elems);

} // namespace jaavr

#endif // JAAVR_FIELD_BATCH_INVERSE_HH
