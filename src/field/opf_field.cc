#include "field/opf_field.hh"

#include "support/logging.hh"

namespace jaavr
{

namespace
{

/** Bit width of a 128-bit accumulator value. */
unsigned
accBits(unsigned __int128 v)
{
    unsigned bits = 0;
    while (v) {
        bits++;
        v >>= 1;
    }
    return bits;
}

} // anonymous namespace

OpfField::OpfField(const OpfPrime &prime) : opf(prime)
{
    // The OPF layout used throughout the paper: u occupies the top
    // half of the most significant word, so k = 16 (mod 32) and the
    // prime has exactly two non-zero words (MSW = u << 16, LSW = 1).
    if (opf.k % 32 != 16)
        fatal("OpfField: k must be 16 mod 32 (got %u)", opf.k);
    s = opf.k / 32 + 1;
    pTopWord = opf.u << 16;
    rModP = (BigUInt(1) << (32 * static_cast<unsigned>(s))) % opf.p;
}

OpfField::Words
OpfField::fromBig(const BigUInt &v) const
{
    if (v.bitLength() > bits())
        panic("OpfField::fromBig: value wider than %u bits", bits());
    return v.toWords(s);
}

BigUInt
OpfField::toBig(const Words &a) const
{
    return BigUInt::fromWords(a);
}

OpfField::Words
OpfField::toMont(const BigUInt &a) const
{
    BigUInt r = (a << (32 * static_cast<unsigned>(s))) % opf.p;
    return fromBig(r);
}

BigUInt
OpfField::fromMont(const Words &a) const
{
    Words one(s, 0);
    one[0] = 1;
    return canonical(montMul(a, one));
}

void
OpfField::subtractCp(Words &a, uint32_t &c) const
{
    // Subtract c * p where p = (pTopWord << 32*(s-1)) + 1. Only the
    // LSW and MSW are touched unless the LSW subtraction borrows,
    // which requires a[0] < c, i.e. a[0] == 0 with c == 1 — the
    // 2^-32-probability corner the paper discusses.
    int64_t d = static_cast<int64_t>(a[0]) - c;
    uint32_t borrow = d < 0 ? 1 : 0;
    a[0] = static_cast<uint32_t>(d);

    if (borrow && c)
        stats.borrowRipples++;
    size_t i = 1;
    while (borrow && i < s - 1) {
        int64_t d2 = static_cast<int64_t>(a[i]) - 1;
        borrow = d2 < 0 ? 1 : 0;
        a[i] = static_cast<uint32_t>(d2);
        i++;
    }

    int64_t dm = static_cast<int64_t>(a[s - 1]) -
                 static_cast<int64_t>(static_cast<uint64_t>(c) * pTopWord) -
                 borrow;
    uint32_t borrow_out = dm < 0 ? 1 : 0;
    a[s - 1] = static_cast<uint32_t>(dm);

    // The borrow out of the MSW cancels against the incoming carry;
    // what remains is the carry for the second subtraction round.
    c = c - borrow_out;
}

void
OpfField::addCp(Words &a, uint32_t &b) const
{
    // Add b * p; dual of subtractCp for modular subtraction.
    uint64_t sum = static_cast<uint64_t>(a[0]) + b;
    uint32_t carry = static_cast<uint32_t>(sum >> 32);
    a[0] = static_cast<uint32_t>(sum);

    if (carry && b)
        stats.borrowRipples++;
    size_t i = 1;
    while (carry && i < s - 1) {
        uint64_t s2 = static_cast<uint64_t>(a[i]) + 1;
        carry = static_cast<uint32_t>(s2 >> 32);
        a[i] = static_cast<uint32_t>(s2);
        i++;
    }

    uint64_t sm = static_cast<uint64_t>(a[s - 1]) +
                  static_cast<uint64_t>(b) * pTopWord + carry;
    uint32_t carry_out = static_cast<uint32_t>(sm >> 32);
    a[s - 1] = static_cast<uint32_t>(sm);

    b = b - carry_out;
}

OpfField::Words
OpfField::add(const Words &a, const Words &b) const
{
    stats = OpfOpStats();
    Words r(s);
    uint64_t carry = 0;
    for (size_t i = 0; i < s; i++) {
        uint64_t t = carry + a[i] + b[i];
        r[i] = static_cast<uint32_t>(t);
        carry = t >> 32;
    }
    uint32_t c = static_cast<uint32_t>(carry);
    subtractCp(r, c);
    subtractCp(r, c);
    if (c != 0)
        panic("OpfField::add: carry not cleared after two subtractions");
    return r;
}

OpfField::Words
OpfField::sub(const Words &a, const Words &b) const
{
    stats = OpfOpStats();
    Words r(s);
    int64_t borrow = 0;
    for (size_t i = 0; i < s; i++) {
        int64_t t = static_cast<int64_t>(a[i]) - b[i] - borrow;
        borrow = t < 0 ? 1 : 0;
        r[i] = static_cast<uint32_t>(t);
    }
    uint32_t c = static_cast<uint32_t>(borrow);
    addCp(r, c);
    addCp(r, c);
    if (c != 0)
        panic("OpfField::sub: borrow not cleared after two additions");
    return r;
}

OpfField::Words
OpfField::montMul(const Words &a, const Words &b) const
{
    stats = OpfOpStats();
    // Finely Integrated Product Scanning with the low-weight prime:
    // p has only P[0] = 1 and P[s-1] = u << 16 non-zero, and
    // -p^-1 = -1 (mod 2^32) because p = 1 (mod 2^32). Hence
    // q[i] = -T[i] mod 2^32 and the reduction costs s word MACs on
    // top of the s^2 multiplication MACs (paper, Section III-B).
    Words q(s, 0);
    Words out(s, 0);
    unsigned __int128 acc = 0;

    auto note_acc = [&] {
        unsigned w = accBits(acc);
        if (w > maxAccBitsSeen)
            maxAccBitsSeen = w;
    };

    // First half: columns 0 .. s-1; compute q digits.
    for (size_t i = 0; i < s; i++) {
        for (size_t j = 0; j <= i; j++) {
            acc += static_cast<uint64_t>(a[j]) * b[i - j];
            stats.wordMacs++;
            note_acc();
        }
        if (i >= s - 1) {
            // q[j] * P[s-1] lands in column j + s - 1.
            size_t j = i - (s - 1);
            acc += static_cast<uint64_t>(q[j]) * pTopWord;
            stats.wordMacs++;
            note_acc();
        }
        uint32_t lo = static_cast<uint32_t>(acc);
        q[i] = static_cast<uint32_t>(0u - lo);
        // q[i] * P[0] = q[i]: clears the column's low word.
        acc += q[i];
        note_acc();
        if (static_cast<uint32_t>(acc) != 0)
            panic("OpfField::montMul: column %zu not cleared", i);
        acc >>= 32;
    }

    // Second half: columns s .. 2s-1; emit result words.
    for (size_t i = s; i < 2 * s; i++) {
        for (size_t j = i - s + 1; j < s; j++) {
            acc += static_cast<uint64_t>(a[j]) * b[i - j];
            stats.wordMacs++;
            note_acc();
        }
        if (i < 2 * s - 1) {
            size_t j = i - (s - 1);
            acc += static_cast<uint64_t>(q[j]) * pTopWord;
            stats.wordMacs++;
            note_acc();
        }
        out[i - s] = static_cast<uint32_t>(acc);
        acc >>= 32;
    }

    // Final carry word is at most 1 (T < 2^n + p); fold it with the
    // same LSW/MSW shortcut as the modular addition.
    uint32_t c = static_cast<uint32_t>(acc);
    if (c > 1)
        panic("OpfField::montMul: final carry %u > 1", c);
    subtractCp(out, c);
    subtractCp(out, c);
    if (c != 0)
        panic("OpfField::montMul: carry not cleared");
    return out;
}

} // namespace jaavr
