#include "avrgen/secp160_routines.hh"

#include "avrgen/asm_builder.hh"
#include "avrgen/opf_routines.hh"
#include "support/logging.hh"

namespace jaavr
{

namespace
{

constexpr unsigned kBytes = 20;

/**
 * Two branch-guarded fold rounds: result += / -= c * (2^31 + 1),
 * which is how one subtracts (adds) c * p modulo 2^160 for
 * p = 2^160 - 2^31 - 1. Expects r20 = c (0/1), r21 = 0; clobbers
 * r22, r23; leaves the updated c in r20. Unlike the OPF fold the
 * carry out of byte 3 (which received c << 7) is *not* rare, so the
 * ripple over bytes 4..19 is ordinary control flow here.
 */
void
emitMersenneFold(AsmBuilder &b, bool subtract, const std::string &prefix)
{
    const char *op0 = subtract ? "sub" : "add";
    const char *opc = subtract ? "sbc" : "adc";
    for (int round = 0; round < 2; round++) {
        b.comment(csprintf("fold round %d: %s c * (2^31 + 1)", round,
                           subtract ? "subtract" : "add"));
        // r23 = c << 7.
        b.ins("mov r23, r20");
        b.ins("neg r23");
        b.ins("andi r23, 0x80");
        b.ins("lds r22, RES+0");
        b.ins("%s r22, r20", op0);
        b.ins("sts RES+0, r22");
        for (unsigned t = 1; t <= 3; t++) {
            b.ins("lds r22, RES+%u", t);
            b.ins("%s r22, %s", opc, t == 3 ? "r23" : "r21");
            b.ins("sts RES+%u, r22", t);
        }
        // The ripple block is ~80 words (LDS/STS are two words each),
        // beyond the +-64-word conditional-branch range: branch to a
        // long jump instead.
        std::string ripple = csprintf("%s_rip_%d", prefix.c_str(), round);
        std::string norip = csprintf("%s_norip_%d", prefix.c_str(), round);
        b.ins("brcs %s", ripple.c_str());
        b.ins("rjmp %s", norip.c_str());
        b.label(ripple);
        for (unsigned t = 4; t < kBytes; t++) {
            b.ins("lds r22, RES+%u", t);
            b.ins("%s r22, r21", opc);
            b.ins("sts RES+%u, r22", t);
        }
        b.label(norip);
        // New c = the carry/borrow out of the chain (0 in the
        // no-ripple path since brcc was taken with C clear).
        b.ins("clr r20");
        b.ins("rol r20");
    }
}

/**
 * The pseudo-Mersenne reduction shared by both multiplier variants:
 * fold the 320-bit product in TB into RES using 2^160 = 2^31 + 1.
 * Expects r21 = 0; clobbers r18..r20 and r22..r27; ends with the two
 * emitMersenneFold rounds.
 */
void
emitSecpReduction(AsmBuilder &b, const std::string &prefix)
{
    // --- First fold: W = l + h + (h << 31), 24 bytes. ----------------
    b.comment("W = l + h");
    for (unsigned t = 0; t < kBytes; t++) {
        b.ins("lds r18, TB+%u", t);
        b.ins("lds r19, TB+%u", kBytes + t);
        b.ins(t == 0 ? "add r18, r19" : "adc r18, r19");
        b.ins("sts WB+%u, r18", t);
    }
    b.ins("clr r18");
    b.ins("rol r18");
    b.ins("sts WB+%u, r18", kBytes);
    for (unsigned t = kBytes + 1; t < 24; t++)
        b.ins("sts WB+%u, r21", t);

    b.comment("HS = h >> 1 (dropped bit -> r23 as 0x80)");
    b.ins("clc");
    for (int t = kBytes - 1; t >= 0; t--) {
        b.ins("lds r18, TB+%d", kBytes + t);
        b.ins("ror r18");
        b.ins("sts HS+%d, r18", t);
    }
    b.ins("clr r23");
    b.ins("ror r23");  // dropped bit lands in bit 7

    b.comment("W += (h << 31)  [= b<<7 at byte 3, HS at bytes 4..23]");
    b.ins("lds r18, WB+3");
    b.ins("add r18, r23");
    b.ins("sts WB+3, r18");
    for (unsigned t = 0; t < kBytes; t++) {
        b.ins("lds r18, WB+%u", 4 + t);
        b.ins("lds r19, HS+%u", t);
        b.ins("adc r18, r19");
        b.ins("sts WB+%u, r18", 4 + t);
    }
    // W < 2^192, so the chain cannot carry out of byte 23.

    // --- Second fold: RES = W[0..19] + h2 + (h2 << 31), h2 < 2^32. --
    b.comment("second fold: h2 in r24..r27");
    b.ins("lds r24, WB+20");
    b.ins("lds r25, WB+21");
    b.ins("lds r26, WB+22");
    b.ins("lds r27, WB+23");
    for (unsigned t = 0; t < kBytes; t++) {
        b.ins("lds r18, WB+%u", t);
        if (t == 0)
            b.ins("add r18, r24");
        else if (t <= 3)
            b.ins("adc r18, r%u", 24 + t);
        else
            b.ins("adc r18, r21");
        b.ins("sts RES+%u, r18", t);
    }
    b.ins("clr r20");
    b.ins("rol r20");  // carry of the + h2 chain

    b.comment("RES += (h2 << 31)");
    b.ins("lsr r27");
    b.ins("ror r26");
    b.ins("ror r25");
    b.ins("ror r24");
    b.ins("clr r23");
    b.ins("ror r23");  // dropped bit of h2 as 0x80
    b.ins("lds r18, RES+3");
    b.ins("add r18, r23");
    b.ins("sts RES+3, r18");
    for (unsigned t = 4; t < kBytes; t++) {
        b.ins("lds r18, RES+%u", t);
        if (t <= 7)
            b.ins("adc r18, r%u", 24 + t - 4);
        else
            b.ins("adc r18, r21");
        b.ins("sts RES+%u, r18", t);
    }
    // Total carry out of 2^160 across both chains is at most 1.
    b.ins("clr r22");
    b.ins("rol r22");
    b.ins("add r20, r22");

    emitMersenneFold(b, /*subtract=*/false, prefix);
}

} // anonymous namespace

std::vector<uint8_t>
secp160r1PrimeBytes()
{
    std::vector<uint8_t> p(kBytes, 0xff);
    p[3] = 0x7f;  // clear bit 31
    return p;
}

std::string
genSecp160AddSub(bool subtract)
{
    AsmBuilder b;
    b.ins(".equ RES = 0x%04x", OpfMemoryMap::resultAddr);
    b.comment(subtract
                  ? "secp160r1 modular subtraction a - b (mod p)"
                  : "secp160r1 modular addition a + b (mod p)");
    b.ins("clr r21");
    for (unsigned t = 0; t < kBytes; t++) {
        b.ins("ldd r18, Y+%u", t);
        b.ins("ldd r19, Z+%u", t);
        if (t == 0)
            b.ins(subtract ? "sub r18, r19" : "add r18, r19");
        else
            b.ins(subtract ? "sbc r18, r19" : "adc r18, r19");
        b.ins("sts RES+%u, r18", t);
    }
    b.ins("clr r20");
    b.ins("rol r20");
    // Addition overflowing 2^160 subtracts c*p == adds c*(2^31+1);
    // subtraction borrowing adds c*p == subtracts c*(2^31+1).
    emitMersenneFold(b, subtract, subtract ? "ss" : "sa");
    b.ins("ret");
    return b.str();
}

std::string
genSecp160Mul()
{
    AsmBuilder b;
    b.ins(".equ RES = 0x%04x", OpfMemoryMap::resultAddr);
    b.ins(".equ TB = 0x%04x", Secp160MemoryMap::tBufAddr);
    b.ins(".equ WB = 0x%04x", Secp160MemoryMap::wBufAddr);
    b.ins(".equ HS = 0x%04x", Secp160MemoryMap::hsBufAddr);
    b.comment("secp160r1 multiplication: 320-bit product scanning, "
              "then the 2^160 = 2^31 + 1 double fold");
    b.comment("acc r2..r10; A cache r11..r14; B cache r15..r18; "
              "catchers r19/r20; zero r21");

    b.ins("clr r21");
    for (unsigned k = 0; k < 9; k++)
        b.ins("clr r%u", 2 + k);

    // --- 320-bit product into TB (product scanning, 5x5 words). -----
    const unsigned s = 5;
    for (unsigned i = 0; i < 2 * s; i++) {
        b.comment(csprintf("--- product column %u ---", i));
        unsigned j_lo = i < s ? 0 : i - s + 1;
        unsigned j_hi = i < s ? i : s - 1;
        for (unsigned j = j_lo; j <= j_hi && i < 2 * s - 1; j++) {
            for (unsigned t = 0; t < 4; t++)
                b.ins("ldd r%u, Y+%u", 11 + t, 4 * j + t);
            for (unsigned t = 0; t < 4; t++)
                b.ins("ldd r%u, Z+%u", 15 + t, 4 * (i - j) + t);
            emitNativeMulBlock(b, {11, 12, 13, 14}, {15, 16, 17, 18}, 0);
        }
        for (unsigned t = 0; t < 4; t++)
            b.ins("sts TB+%u, r%u", 4 * i + t, 2 + t);
        b.ins("movw r2, r6");
        b.ins("movw r4, r8");
        b.ins("mov r6, r10");
        b.ins("clr r7");
        b.ins("clr r8");
        b.ins("clr r9");
        b.ins("clr r10");
    }

    emitSecpReduction(b, "sm");
    b.ins("ret");
    return b.str();
}

std::string
genSecp160MulIse()
{
    AsmBuilder b;
    b.ins(".equ RES = 0x%04x", OpfMemoryMap::resultAddr);
    b.ins(".equ TB = 0x%04x", Secp160MemoryMap::tBufAddr);
    b.ins(".equ WB = 0x%04x", Secp160MemoryMap::wBufAddr);
    b.ins(".equ HS = 0x%04x", Secp160MemoryMap::hsBufAddr);
    b.ins(".equ MACCR = 0x%02x", 0x3c);
    b.comment("secp160r1 multiplication with the MAC-unit product "
              "phase; the pseudo-Mersenne reduction stays additive");

    b.ins("clr r21");
    b.ins("ldi r18, 0x02");  // Algorithm-2 trigger mode only
    b.ins("out MACCR, r18");
    for (unsigned k = 0; k < 9; k++)
        b.ins("clr r%u", k);

    const unsigned s = 5;
    for (unsigned i = 0; i < 2 * s; i++) {
        b.comment(csprintf("--- product column %u (MAC blocks) ---", i));
        unsigned j_lo = i < s ? 0 : i - s + 1;
        unsigned j_hi = i < s ? i : s - 1;
        if (i < 2 * s - 1) {
            for (unsigned j = j_lo; j <= j_hi; j++)
                emitIseMulBlock(b, i - j, j == j_lo, j, j < j_hi, j + 1);
        }
        for (unsigned t = 0; t < 4; t++)
            b.ins("sts TB+%u, r%u", 4 * i + t, t);
        b.ins("movw r0, r4");
        b.ins("movw r2, r6");
        b.ins("mov r4, r8");
        b.ins("clr r5");
        b.ins("clr r6");
        b.ins("clr r7");
        b.ins("clr r8");
    }

    // MAC off before the fold (it uses r24 as a plain register). The
    // staging loads used r20..r23, so the zero register must be
    // re-established first.
    b.ins("clr r21");
    b.ins("out MACCR, r21");
    emitSecpReduction(b, "si");
    b.ins("ret");
    return b.str();
}

std::string
genSecp160Inverse()
{
    return genMontInverseBytes(secp160r1PrimeBytes());
}

} // namespace jaavr
