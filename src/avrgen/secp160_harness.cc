#include "avrgen/secp160_harness.hh"

#include "support/logging.hh"

namespace jaavr
{

namespace
{

std::vector<uint8_t>
toBytes(const std::vector<uint32_t> &w)
{
    std::vector<uint8_t> out;
    out.reserve(w.size() * 4);
    for (uint32_t word : w) {
        out.push_back(static_cast<uint8_t>(word));
        out.push_back(static_cast<uint8_t>(word >> 8));
        out.push_back(static_cast<uint8_t>(word >> 16));
        out.push_back(static_cast<uint8_t>(word >> 24));
    }
    return out;
}

std::vector<uint32_t>
fromBytes(const std::vector<uint8_t> &bytes)
{
    std::vector<uint32_t> out(bytes.size() / 4, 0);
    for (size_t i = 0; i < bytes.size(); i++)
        out[i / 4] |= static_cast<uint32_t>(bytes[i]) << (8 * (i % 4));
    return out;
}

} // anonymous namespace

Secp160AvrLibrary::Secp160AvrLibrary(CpuMode mode)
    : machine_(std::make_unique<Machine>(mode))
{
    progAdd = assemble(genSecp160AddSub(false), "secp160_add");
    progSub = assemble(genSecp160AddSub(true), "secp160_sub");
    progMul = assemble(genSecp160Mul(), "secp160_mul");
    progInv = assemble(genSecp160Inverse(), "secp160_inv");
    machine_->loadProgram(progAdd.words, addEntry);
    machine_->loadProgram(progSub.words, subEntry);
    machine_->loadProgram(progMul.words, mulEntry);
    machine_->loadProgram(progInv.words, invEntry);
    if (mode == CpuMode::ISE) {
        progMulIse = assemble(genSecp160MulIse(), "secp160_mul_ise");
        machine_->loadProgram(progMulIse.words, mulIseEntry);
    }
}

OpfRun
Secp160AvrLibrary::run(uint32_t entry, const std::vector<uint32_t> &a,
                       const std::vector<uint32_t> &b)
{
    if (a.size() != 5 || b.size() != 5)
        panic("Secp160AvrLibrary: operands must be 5 words");
    machine_->writeBytes(OpfMemoryMap::aAddr, toBytes(a));
    machine_->writeBytes(OpfMemoryMap::bAddr, toBytes(b));
    machine_->setY(OpfMemoryMap::aAddr);
    machine_->setZ(OpfMemoryMap::bAddr);
    machine_->setSp(0x10ff);
    uint64_t insts = machine_->stats().instructions;
    RunResult rr = machine_->call(entry);
    OpfRun out;
    out.cycles = rr.cycles;
    out.trap = rr.trap;
    out.instructions = machine_->stats().instructions - insts;
    out.result =
        fromBytes(machine_->readBytes(OpfMemoryMap::resultAddr, 20));
    return out;
}

OpfRun
Secp160AvrLibrary::add(const std::vector<uint32_t> &a,
                       const std::vector<uint32_t> &b)
{
    return run(addEntry, a, b);
}

OpfRun
Secp160AvrLibrary::sub(const std::vector<uint32_t> &a,
                       const std::vector<uint32_t> &b)
{
    return run(subEntry, a, b);
}

OpfRun
Secp160AvrLibrary::mul(const std::vector<uint32_t> &a,
                       const std::vector<uint32_t> &b)
{
    return run(mulEntry, a, b);
}

OpfRun
Secp160AvrLibrary::inv(const std::vector<uint32_t> &a)
{
    return run(invEntry, a, std::vector<uint32_t>(5, 0));
}

OpfRun
Secp160AvrLibrary::mulIse(const std::vector<uint32_t> &a,
                          const std::vector<uint32_t> &b)
{
    if (machine_->mode() != CpuMode::ISE)
        panic("Secp160AvrLibrary::mulIse requires ISE mode");
    return run(mulIseEntry, a, b);
}

SymbolTable
Secp160AvrLibrary::symbols() const
{
    SymbolTable st;
    st.addProgram("secp160_add", progAdd, addEntry);
    st.addProgram("secp160_sub", progSub, subEntry);
    st.addProgram("secp160_mul", progMul, mulEntry);
    st.addProgram("secp160_inv", progInv, invEntry);
    if (!progMulIse.words.empty())
        st.addProgram("secp160_mul_ise", progMulIse, mulIseEntry);
    return st;
}

size_t
Secp160AvrLibrary::romBytes() const
{
    return progAdd.romBytes() + progSub.romBytes() + progMul.romBytes() +
           progInv.romBytes();
}

} // namespace jaavr
