/**
 * @file
 * ISS harness for the secp160r1 assembly routine set (the analogue of
 * OpfAvrLibrary for the standardized reference field).
 */

#ifndef JAAVR_AVRGEN_SECP160_HARNESS_HH
#define JAAVR_AVRGEN_SECP160_HARNESS_HH

#include <memory>

#include "avr/machine.hh"
#include "avrasm/assembler.hh"
#include "avrasm/symbol_table.hh"
#include "avrgen/opf_harness.hh"
#include "avrgen/secp160_routines.hh"

namespace jaavr
{

class Secp160AvrLibrary
{
  public:
    explicit Secp160AvrLibrary(CpuMode mode);

    CpuMode mode() const { return machine_->mode(); }

    /** a + b (mod p), incompletely reduced in [0, 2^160). */
    OpfRun add(const std::vector<uint32_t> &a,
               const std::vector<uint32_t> &b);

    /** a - b (mod p). */
    OpfRun sub(const std::vector<uint32_t> &a,
               const std::vector<uint32_t> &b);

    /** Plain modular product a * b mod p (no Montgomery domain). */
    OpfRun mul(const std::vector<uint32_t> &a,
               const std::vector<uint32_t> &b);

    /** Kaliski inverse a^-1 * 2^160 (mod p). */
    OpfRun inv(const std::vector<uint32_t> &a);

    /**
     * The MAC-product multiplication variant (ISE mode only; panics
     * otherwise). Used by the OPF ablation.
     */
    OpfRun mulIse(const std::vector<uint32_t> &a,
                  const std::vector<uint32_t> &b);

    size_t romBytes() const;

    Machine &machine() { return *machine_; }

    /** Symbols of the loaded routines (for profiler attribution). */
    SymbolTable symbols() const;

  private:
    OpfRun run(uint32_t entry, const std::vector<uint32_t> &a,
               const std::vector<uint32_t> &b);

    std::unique_ptr<Machine> machine_;
    Program progAdd, progSub, progMul, progMulIse, progInv;
    static constexpr uint32_t addEntry = 0x0000;
    static constexpr uint32_t subEntry = 0x1000;
    static constexpr uint32_t mulEntry = 0x2000;
    static constexpr uint32_t invEntry = 0x4000;
    static constexpr uint32_t mulIseEntry = 0x6000;
};

} // namespace jaavr

#endif // JAAVR_AVRGEN_SECP160_HARNESS_HH
