/**
 * @file
 * Small helper for emitting AVR assembly source from the OPF routine
 * generators.
 */

#ifndef JAAVR_AVRGEN_ASM_BUILDER_HH
#define JAAVR_AVRGEN_ASM_BUILDER_HH

#include <string>

#include "support/logging.hh"

namespace jaavr
{

class AsmBuilder
{
  public:
    /** Emit one instruction or directive line. */
    void
    line(const std::string &text)
    {
        src += "    " + text + "\n";
    }

    /** printf-style instruction line. */
    template <typename... Args>
    void
    ins(const char *fmt, Args... args)
    {
        line(csprintf(fmt, args...));
    }

    /** Emit a label. */
    void
    label(const std::string &name)
    {
        src += name + ":\n";
    }

    /** Emit a comment line. */
    void
    comment(const std::string &text)
    {
        src += "    ; " + text + "\n";
    }

    const std::string &str() const { return src; }

  private:
    std::string src;
};

} // namespace jaavr

#endif // JAAVR_AVRGEN_ASM_BUILDER_HH
