#include "avrgen/ct_check.hh"

#include <algorithm>
#include <array>
#include <deque>
#include <map>
#include <set>

#include "avr/isa.hh"
#include "avr/mac_unit.hh"
#include "support/logging.hh"

namespace jaavr
{

namespace
{

// SREG bit indices (match Machine::fC..fI).
constexpr unsigned fC = 0, fZ = 1, fN = 2, fV = 3, fS = 4, fH = 5,
                   fT = 6;
constexpr uint8_t ioMaccr = 0x3c;
constexpr uint8_t ioSreg = 0x3f;

/** Abstract value of one register byte. */
struct RegVal
{
    bool taint = false;
    bool known = false;
    uint8_t val = 0;

    static RegVal secret() { return {true, false, 0}; }
    static RegVal unknown() { return {false, false, 0}; }
    static RegVal concrete(uint8_t v) { return {false, true, v}; }

    bool
    join(const RegVal &o)
    {
        bool changed = false;
        if (o.taint && !taint) {
            taint = true;
            changed = true;
        }
        if (known && (!o.known || o.val != val)) {
            known = false;
            changed = true;
        }
        return changed;
    }
};

/** Abstract machine state at one (pc, call stack) point. */
struct State
{
    std::array<RegVal, 32> regs;
    uint8_t sregTaint = 0; ///< bit i set = flag i secret-tainted
    bool maccrKnown = true;
    uint8_t maccrVal = 0; ///< machine reset value
    std::vector<RegVal> stack; ///< PUSH/POP shadow data stack

    bool
    join(const State &o)
    {
        bool changed = false;
        for (size_t i = 0; i < regs.size(); i++)
            changed |= regs[i].join(o.regs[i]);
        if ((o.sregTaint | sregTaint) != sregTaint) {
            sregTaint |= o.sregTaint;
            changed = true;
        }
        if (maccrKnown && (!o.maccrKnown || o.maccrVal != maccrVal)) {
            maccrKnown = false;
            changed = true;
        }
        if (stack.size() != o.stack.size()) {
            // Mismatched push depth at a join — keep the common
            // prefix; the caller records an Unsupported finding.
            stack.resize(std::min(stack.size(), o.stack.size()));
            changed = true;
        }
        for (size_t i = 0; i < stack.size(); i++)
            changed |= stack[i].join(o.stack[i]);
        return changed;
    }
};

using CallStack = std::vector<uint32_t>;
using StateKey = std::pair<uint32_t, CallStack>;

struct Walker
{
    const std::vector<uint16_t> &flash;
    const CtCheckSpec &spec;
    std::set<uint32_t> &memTaint; ///< tainted data-space bytes (grows)
    std::map<std::pair<uint32_t, int>, CtFinding> findings;
    std::map<StateKey, State> states;
    std::deque<StateKey> worklist;
    uint64_t steps = 0;
    bool budgetHit = false;

    static constexpr uint64_t kMaxSteps = 4'000'000;
    static constexpr size_t kMaxCallDepth = 32;

    Inst
    fetch(uint32_t pc) const
    {
        uint16_t w0 = pc < flash.size() ? flash[pc] : 0xffff;
        uint16_t w1 = pc + 1 < flash.size() ? flash[pc + 1] : 0xffff;
        return decode(w0, w1);
    }

    void
    finding(uint32_t pc, CtFindingClass cls, const Inst &inst)
    {
        auto key = std::make_pair(pc, int(cls));
        if (findings.count(key))
            return;
        findings[key] = CtFinding{pc, cls, disassemble(inst), false};
    }

    void
    enqueue(uint32_t pc, const CallStack &cs, const State &st)
    {
        StateKey key{pc, cs};
        auto it = states.find(key);
        if (it == states.end()) {
            states.emplace(key, st);
            worklist.push_back(key);
        } else if (it->second.join(st)) {
            worklist.push_back(key);
        }
    }

    bool
    pairKnown(const State &st, unsigned lo, uint16_t &out) const
    {
        if (!st.regs[lo].known || !st.regs[lo + 1].known)
            return false;
        out = uint16_t(st.regs[lo].val) |
              (uint16_t(st.regs[lo + 1].val) << 8);
        return true;
    }

    bool
    pairTaint(const State &st, unsigned lo) const
    {
        return st.regs[lo].taint || st.regs[lo + 1].taint;
    }

    void
    setPair(State &st, unsigned lo, bool known, uint16_t v, bool taint)
    {
        st.regs[lo] = RegVal{taint, known, uint8_t(v & 0xff)};
        st.regs[lo + 1] = RegVal{taint, known, uint8_t(v >> 8)};
    }

    /** Taint @p bits of SREG to @p t (replacing the old taint). */
    static void
    setFlags(State &st, uint8_t bits, bool t)
    {
        if (t)
            st.sregTaint |= bits;
        else
            st.sregTaint &= ~bits;
    }

    static uint8_t
    flagBit(unsigned f)
    {
        return uint8_t(1u << f);
    }

    bool
    memLoad(State &st, uint32_t pc, const Inst &inst, bool addrKnown,
            uint16_t addr, bool addrTaint) const
    {
        // Returns the taint of the loaded byte; tainted or
        // statically unknown addresses load conservatively tainted.
        (void)st;
        (void)pc;
        (void)inst;
        if (addrTaint || !addrKnown)
            return true;
        return memTaint.count(addr) != 0;
    }

    void
    memStore(uint32_t pc, const Inst &inst, bool addrKnown,
             uint16_t addr, bool addrTaint, bool dataTaint)
    {
        if (addrTaint)
            return; // already a TaintedAddress finding at the call site
        if (!addrKnown) {
            if (dataTaint)
                finding(pc, CtFindingClass::Unsupported, inst);
            return;
        }
        if (dataTaint)
            memTaint.insert(addr);
    }

    /** True when the MAC swap trigger may be armed. */
    bool
    swapArmed(const State &st) const
    {
        return !st.maccrKnown ||
               (st.maccrVal & MacUnit::ctrlSwapMode) != 0;
    }

    bool
    loadArmed(const State &st) const
    {
        return !st.maccrKnown ||
               (st.maccrVal & MacUnit::ctrlLoadMode) != 0;
    }

    /** MAC fired: accumulator R0..R8 absorbs the trigger taint. */
    static void
    macTrigger(State &st, bool triggerTaint)
    {
        bool t = triggerTaint;
        for (unsigned r = 16; r < 20; r++)
            t = t || st.regs[r].taint;
        for (unsigned r = 0; r < 9; r++)
            t = t || st.regs[r].taint;
        if (!t)
            return;
        for (unsigned r = 0; r < 9; r++) {
            st.regs[r].taint = true;
            st.regs[r].known = false;
        }
    }

    void run(const State &entry);
    void step(const StateKey &key);
};

void
Walker::run(const State &entry)
{
    states.clear();
    worklist.clear();
    findings.clear();
    steps = 0;
    budgetHit = false;
    enqueue(spec.entry, {}, entry);
    while (!worklist.empty()) {
        if (++steps > kMaxSteps) {
            budgetHit = true;
            finding(worklist.front().first, CtFindingClass::Unsupported,
                    Inst{});
            break;
        }
        StateKey key = worklist.front();
        worklist.pop_front();
        step(key);
    }
}

void
Walker::step(const StateKey &key)
{
    const uint32_t pc = key.first;
    const CallStack &cs = key.second;
    State st = states.at(key); // copy: transfer function mutates
    Inst inst = fetch(pc);
    uint32_t next = pc + inst.words;

    auto branchTarget = [&]() { return uint32_t(pc + 1 + inst.disp); };
    auto skipTarget = [&]() {
        return uint32_t(next + fetch(next).words);
    };

    // Effective address of the LD/LDD/ST/STD families: pointer pair
    // base register, optional displacement, optional post-inc /
    // pre-dec pointer update.
    auto pointerBase = [&](Op op) -> unsigned {
        switch (op) {
          case Op::LD_X: case Op::LD_X_INC: case Op::LD_X_DEC:
          case Op::ST_X: case Op::ST_X_INC: case Op::ST_X_DEC:
            return 26;
          case Op::LDD_Y: case Op::LD_Y_INC: case Op::LD_Y_DEC:
          case Op::STD_Y: case Op::ST_Y_INC: case Op::ST_Y_DEC:
            return 28;
          default:
            return 30;
        }
    };
    auto isInc = [](Op op) {
        return op == Op::LD_X_INC || op == Op::LD_Y_INC ||
               op == Op::LD_Z_INC || op == Op::ST_X_INC ||
               op == Op::ST_Y_INC || op == Op::ST_Z_INC;
    };
    auto isDec = [](Op op) {
        return op == Op::LD_X_DEC || op == Op::LD_Y_DEC ||
               op == Op::LD_Z_DEC || op == Op::ST_X_DEC ||
               op == Op::ST_Y_DEC || op == Op::ST_Z_DEC;
    };

    switch (inst.op) {
      // --- moves and immediates ------------------------------------
      case Op::LDI:
        st.regs[inst.rd] = RegVal::concrete(inst.imm);
        break;
      case Op::MOV:
        st.regs[inst.rd] = st.regs[inst.rr];
        break;
      case Op::MOVW:
        st.regs[inst.rd] = st.regs[inst.rr];
        st.regs[inst.rd + 1] = st.regs[inst.rr + 1];
        break;

      // --- arithmetic ----------------------------------------------
      case Op::ADD: case Op::SUB: {
        RegVal &d = st.regs[inst.rd];
        const RegVal &r = st.regs[inst.rr];
        bool t = d.taint || r.taint;
        bool k = d.known && r.known;
        uint8_t v = inst.op == Op::ADD ? uint8_t(d.val + r.val)
                                       : uint8_t(d.val - r.val);
        d = RegVal{t, k, v};
        setFlags(st, 0x3f, t);
        break;
      }
      case Op::ADC: case Op::SBC: {
        bool t = st.regs[inst.rd].taint || st.regs[inst.rr].taint ||
                 (st.sregTaint & flagBit(fC)) ||
                 (inst.op == Op::SBC && (st.sregTaint & flagBit(fZ)));
        st.regs[inst.rd] = RegVal{t, false, 0};
        setFlags(st, 0x3f, t);
        break;
      }
      case Op::SUBI: {
        RegVal &d = st.regs[inst.rd];
        bool t = d.taint;
        bool k = d.known;
        d = RegVal{t, k, uint8_t(d.val - inst.imm)};
        setFlags(st, 0x3f, t);
        break;
      }
      case Op::SBCI: {
        bool t = st.regs[inst.rd].taint ||
                 (st.sregTaint & (flagBit(fC) | flagBit(fZ)));
        st.regs[inst.rd] = RegVal{t, false, 0};
        setFlags(st, 0x3f, t);
        break;
      }
      case Op::ADIW: case Op::SBIW: {
        uint16_t v = 0;
        bool k = pairKnown(st, inst.rd, v);
        bool t = pairTaint(st, inst.rd);
        v = inst.op == Op::ADIW ? uint16_t(v + inst.imm)
                                : uint16_t(v - inst.imm);
        setPair(st, inst.rd, k, v, t);
        setFlags(st, 0x1f, t);
        break;
      }
      case Op::INC: case Op::DEC: {
        RegVal &d = st.regs[inst.rd];
        d.val = inst.op == Op::INC ? uint8_t(d.val + 1)
                                   : uint8_t(d.val - 1);
        setFlags(st, flagBit(fS) | flagBit(fV) | flagBit(fN) |
                         flagBit(fZ),
                 d.taint);
        break;
      }
      case Op::NEG: {
        RegVal &d = st.regs[inst.rd];
        d.val = uint8_t(-d.val);
        setFlags(st, 0x3f, d.taint);
        break;
      }
      case Op::COM: {
        RegVal &d = st.regs[inst.rd];
        d.val = uint8_t(~d.val);
        // COM sets C = 1 and V = 0 unconditionally: both untainted.
        setFlags(st, flagBit(fC) | flagBit(fV), false);
        setFlags(st, flagBit(fS) | flagBit(fN) | flagBit(fZ), d.taint);
        break;
      }

      // --- logic ---------------------------------------------------
      case Op::AND: case Op::OR: case Op::EOR: {
        RegVal &d = st.regs[inst.rd];
        const RegVal &r = st.regs[inst.rr];
        if (inst.op == Op::EOR && inst.rd == inst.rr) {
            // CLR: x ^ x = 0 independent of the secret.
            d = RegVal::concrete(0);
        } else {
            bool k = d.known && r.known;
            uint8_t v = inst.op == Op::AND ? uint8_t(d.val & r.val)
                      : inst.op == Op::OR  ? uint8_t(d.val | r.val)
                                           : uint8_t(d.val ^ r.val);
            d = RegVal{d.taint || r.taint, k, v};
        }
        setFlags(st, flagBit(fV), false);
        setFlags(st, flagBit(fS) | flagBit(fN) | flagBit(fZ), d.taint);
        break;
      }
      case Op::ANDI: case Op::ORI: {
        RegVal &d = st.regs[inst.rd];
        d.val = inst.op == Op::ANDI ? uint8_t(d.val & inst.imm)
                                    : uint8_t(d.val | inst.imm);
        setFlags(st, flagBit(fV), false);
        setFlags(st, flagBit(fS) | flagBit(fN) | flagBit(fZ), d.taint);
        break;
      }

      // --- shifts --------------------------------------------------
      case Op::LSR: case Op::ASR: {
        RegVal &d = st.regs[inst.rd];
        d.known = false;
        setFlags(st, 0x1f, d.taint);
        break;
      }
      case Op::ROR: {
        RegVal &d = st.regs[inst.rd];
        bool cIn = (st.sregTaint & flagBit(fC)) != 0;
        setFlags(st, flagBit(fC), d.taint); // C out = old bit 0
        d = RegVal{d.taint || cIn, false, 0};
        setFlags(st, flagBit(fS) | flagBit(fV) | flagBit(fN) |
                         flagBit(fZ),
                 d.taint);
        break;
      }
      case Op::SWAP: {
        RegVal &d = st.regs[inst.rd];
        if (swapArmed(st))
            macTrigger(st, d.taint);
        d.val = uint8_t((d.val << 4) | (d.val >> 4));
        break;
      }

      // --- compares ------------------------------------------------
      case Op::CP:
        setFlags(st, 0x3f,
                 st.regs[inst.rd].taint || st.regs[inst.rr].taint);
        break;
      case Op::CPC:
        setFlags(st, 0x3f,
                 st.regs[inst.rd].taint || st.regs[inst.rr].taint ||
                     (st.sregTaint &
                      (flagBit(fC) | flagBit(fZ))) != 0);
        break;
      case Op::CPI:
        setFlags(st, 0x3f, st.regs[inst.rd].taint);
        break;

      // --- multiply ------------------------------------------------
      case Op::MUL: case Op::MULS: case Op::MULSU:
      case Op::FMUL: case Op::FMULS: case Op::FMULSU: {
        bool t = st.regs[inst.rd].taint || st.regs[inst.rr].taint;
        st.regs[0] = RegVal{t, false, 0};
        st.regs[1] = RegVal{t, false, 0};
        setFlags(st, flagBit(fC) | flagBit(fZ), t);
        break;
      }

      // --- flag and bit manipulation -------------------------------
      case Op::BSET: case Op::BCLR:
        setFlags(st, flagBit(inst.bit), false);
        break;
      case Op::BST:
        setFlags(st, flagBit(fT), st.regs[inst.rd].taint);
        break;
      case Op::BLD: {
        RegVal &d = st.regs[inst.rd];
        d.taint = d.taint || (st.sregTaint & flagBit(fT));
        d.known = false;
        break;
      }

      // --- I/O -----------------------------------------------------
      case Op::IN: {
        if (inst.imm == ioMaccr) {
            st.regs[inst.rd] =
                st.maccrKnown ? RegVal::concrete(st.maccrVal)
                              : RegVal::unknown();
        } else if (inst.imm == ioSreg) {
            st.regs[inst.rd] = RegVal{st.sregTaint != 0, false, 0};
        } else {
            st.regs[inst.rd] = RegVal::unknown();
        }
        break;
      }
      case Op::OUT: {
        const RegVal &r = st.regs[inst.rd];
        if (r.taint) {
            // Writing secret data to an I/O register leaves the
            // model (SP, MACCR, ports): refuse to prove it.
            finding(pc, CtFindingClass::Unsupported, inst);
        }
        if (inst.imm == ioMaccr) {
            st.maccrKnown = r.known && !r.taint;
            st.maccrVal = r.val;
        } else if (inst.imm == ioSreg) {
            st.sregTaint = r.taint ? 0xff : 0;
        }
        break;
      }
      case Op::SBI: case Op::CBI:
        break;

      // --- loads ---------------------------------------------------
      case Op::LDS: {
        bool t = memLoad(st, pc, inst, true, uint16_t(inst.k), false);
        st.regs[inst.rd] = RegVal{t, false, 0};
        if (loadArmed(st) && inst.rd == 24)
            macTrigger(st, t);
        break;
      }
      case Op::LD_X: case Op::LD_X_INC: case Op::LD_X_DEC:
      case Op::LDD_Y: case Op::LD_Y_INC: case Op::LD_Y_DEC:
      case Op::LDD_Z: case Op::LD_Z_INC: case Op::LD_Z_DEC: {
        unsigned base = pointerBase(inst.op);
        uint16_t ptr = 0;
        bool k = pairKnown(st, base, ptr);
        bool at = pairTaint(st, base);
        if (at)
            finding(pc, CtFindingClass::TaintedAddress, inst);
        if (isDec(inst.op)) {
            ptr = uint16_t(ptr - 1);
            setPair(st, base, k, ptr, at);
        }
        uint16_t addr = uint16_t(ptr + (inst.op == Op::LDD_Y ||
                                                inst.op == Op::LDD_Z
                                            ? inst.disp
                                            : 0));
        bool t = memLoad(st, pc, inst, k, addr, at);
        st.regs[inst.rd] = RegVal{t, false, 0};
        if (isInc(inst.op))
            setPair(st, base, k, uint16_t(ptr + 1), at);
        if (loadArmed(st) && inst.rd == 24)
            macTrigger(st, t);
        break;
      }

      // --- stores --------------------------------------------------
      case Op::STS:
        memStore(pc, inst, true, uint16_t(inst.k), false,
                 st.regs[inst.rd].taint);
        break;
      case Op::ST_X: case Op::ST_X_INC: case Op::ST_X_DEC:
      case Op::STD_Y: case Op::ST_Y_INC: case Op::ST_Y_DEC:
      case Op::STD_Z: case Op::ST_Z_INC: case Op::ST_Z_DEC: {
        unsigned base = pointerBase(inst.op);
        uint16_t ptr = 0;
        bool k = pairKnown(st, base, ptr);
        bool at = pairTaint(st, base);
        if (at)
            finding(pc, CtFindingClass::TaintedAddress, inst);
        if (isDec(inst.op)) {
            ptr = uint16_t(ptr - 1);
            setPair(st, base, k, ptr, at);
        }
        uint16_t addr = uint16_t(ptr + (inst.op == Op::STD_Y ||
                                                inst.op == Op::STD_Z
                                            ? inst.disp
                                            : 0));
        memStore(pc, inst, k, addr, at, st.regs[inst.rd].taint);
        if (isInc(inst.op))
            setPair(st, base, k, uint16_t(ptr + 1), at);
        break;
      }

      case Op::PUSH:
        st.stack.push_back(st.regs[inst.rd]);
        break;
      case Op::POP:
        if (st.stack.empty()) {
            st.regs[inst.rd] = RegVal::unknown();
        } else {
            st.regs[inst.rd] = st.stack.back();
            st.stack.pop_back();
        }
        break;

      case Op::LPM_R0: case Op::LPM: case Op::LPM_INC: {
        // Flash is public program data, but a secret-dependent table
        // index is exactly the lookup-timing channel.
        if (pairTaint(st, 30))
            finding(pc, CtFindingClass::TaintedAddress, inst);
        unsigned rd = inst.op == Op::LPM_R0 ? 0 : inst.rd;
        st.regs[rd] = RegVal::unknown();
        if (inst.op == Op::LPM_INC) {
            uint16_t z = 0;
            bool k = pairKnown(st, 30, z);
            setPair(st, 30, k, uint16_t(z + 1), pairTaint(st, 30));
        }
        break;
      }

      // --- control flow --------------------------------------------
      case Op::RJMP:
        enqueue(branchTarget(), cs, st);
        return;
      case Op::JMP:
        enqueue(inst.k, cs, st);
        return;
      case Op::RCALL: case Op::CALL: {
        if (cs.size() >= kMaxCallDepth) {
            finding(pc, CtFindingClass::Unsupported, inst);
            return;
        }
        CallStack callee = cs;
        callee.push_back(next);
        enqueue(inst.op == Op::RCALL ? branchTarget() : inst.k, callee,
                st);
        return;
      }
      case Op::RET: case Op::RETI: {
        if (cs.empty())
            return; // routine exit
        CallStack caller = cs;
        uint32_t ret = caller.back();
        caller.pop_back();
        enqueue(ret, caller, st);
        return;
      }
      case Op::BRBS: case Op::BRBC:
        if (st.sregTaint & flagBit(inst.bit))
            finding(pc, CtFindingClass::TaintedBranch, inst);
        enqueue(branchTarget(), cs, st);
        enqueue(next, cs, st);
        return;
      case Op::SBRC: case Op::SBRS:
        if (st.regs[inst.rd].taint)
            finding(pc, CtFindingClass::TaintedSkip, inst);
        enqueue(skipTarget(), cs, st);
        enqueue(next, cs, st);
        return;
      case Op::CPSE:
        if (st.regs[inst.rd].taint || st.regs[inst.rr].taint)
            finding(pc, CtFindingClass::TaintedSkip, inst);
        enqueue(skipTarget(), cs, st);
        enqueue(next, cs, st);
        return;
      case Op::SBIC: case Op::SBIS:
        // I/O bits are public in this model.
        enqueue(skipTarget(), cs, st);
        enqueue(next, cs, st);
        return;
      case Op::IJMP: case Op::ICALL: {
        if (pairTaint(st, 30))
            finding(pc, CtFindingClass::TaintedIndirect, inst);
        uint16_t z;
        if (!pairKnown(st, 30, z)) {
            finding(pc, CtFindingClass::Unsupported, inst);
            return;
        }
        if (inst.op == Op::IJMP) {
            enqueue(z, cs, st);
        } else {
            if (cs.size() >= kMaxCallDepth) {
                finding(pc, CtFindingClass::Unsupported, inst);
                return;
            }
            CallStack callee = cs;
            callee.push_back(next);
            enqueue(z, callee, st);
        }
        return;
      }

      case Op::NOP: case Op::WDR:
        break;
      case Op::SLEEP: case Op::BREAK: case Op::INVALID:
      default:
        finding(pc, CtFindingClass::Unsupported, inst);
        return; // cannot continue past an unmodeled instruction
    }

    enqueue(next, cs, st);
}

} // anonymous namespace

const char *
ctContractName(CtContract c)
{
    switch (c) {
      case CtContract::ConstantTime: return "constant_time";
      case CtContract::VariableTime: return "variable_time";
    }
    return "?";
}

const char *
ctFindingClassName(CtFindingClass c)
{
    switch (c) {
      case CtFindingClass::TaintedBranch: return "tainted-branch";
      case CtFindingClass::TaintedSkip: return "tainted-skip";
      case CtFindingClass::TaintedAddress: return "tainted-address";
      case CtFindingClass::TaintedIndirect: return "tainted-indirect";
      case CtFindingClass::Unsupported: return "unsupported";
    }
    return "?";
}

size_t
CtReport::waivedCount() const
{
    size_t n = 0;
    for (const CtFinding &f : findings)
        n += f.waived;
    return n;
}

size_t
CtReport::violationCount() const
{
    return findings.size() - waivedCount();
}

CtReport
ctCheck(const std::vector<uint16_t> &flash, const CtCheckSpec &spec)
{
    State entry;
    for (auto [reg, val] : spec.entryRegs)
        entry.regs[reg] = RegVal::concrete(val);

    std::set<uint32_t> memTaint;
    for (const CtSecretRange &r : spec.secrets)
        for (uint32_t a = r.addr; a < uint32_t(r.addr) + r.len; a++)
            memTaint.insert(a);

    Walker w{flash, spec, memTaint, {}, {}, {}, 0, false};
    CtReport rep;
    rep.routine = spec.routine;
    rep.contract = spec.contract;

    // Outer fixpoint: stores taint memory mid-walk, and a load at a
    // join analyzed before the tainting store would have read stale
    // taint — re-run the whole walk until the map stops growing.
    for (;;) {
        rep.memPasses++;
        size_t before = memTaint.size();
        w.run(entry);
        if (memTaint.size() == before || w.budgetHit ||
            rep.memPasses >= 16)
            break;
    }

    rep.instsAnalyzed = w.states.size();
    for (auto &[key, f] : w.findings)
        rep.findings.push_back(f);
    std::sort(rep.findings.begin(), rep.findings.end(),
              [](const CtFinding &a, const CtFinding &b) {
                  return a.pc != b.pc ? a.pc < b.pc
                                      : int(a.cls) < int(b.cls);
              });

    // Waivers. ConstantTime: the fold-ripple branch sites, and only
    // if the site count matches the allowance exactly-or-fewer.
    // VariableTime: secret-dependent control flow is the concession;
    // addresses and unsupported state still count.
    size_t branchSites = 0;
    for (const CtFinding &f : rep.findings)
        branchSites += f.cls == CtFindingClass::TaintedBranch;
    for (CtFinding &f : rep.findings) {
        if (spec.contract == CtContract::VariableTime) {
            f.waived = f.cls == CtFindingClass::TaintedBranch ||
                       f.cls == CtFindingClass::TaintedSkip;
        } else {
            f.waived = f.cls == CtFindingClass::TaintedBranch &&
                       branchSites <= spec.waivedBranches;
        }
    }
    rep.pass = rep.violationCount() == 0;
    return rep;
}

} // namespace jaavr
