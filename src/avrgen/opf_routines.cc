#include "avrgen/opf_routines.hh"

#include <vector>

#include "avrgen/asm_builder.hh"
#include "support/logging.hh"

namespace jaavr
{

namespace
{

/**
 * Shared final fold: two branch-less rounds of +-c*p on the result
 * buffer, touching only the least and most significant words; the
 * rare (probability 2^-32) ripple through the zero middle bytes is
 * handled out of line, exactly as in Section III-A of the paper.
 *
 * Expects: r20 = c (0/1), r21 = 0. Clobbers r22, r23, r26, r27.
 *
 * @param subtract_p true after additions/multiplications (subtract
 *                   c*p), false after subtractions (add c*p back)
 */
void
emitFinalFold(AsmBuilder &b, const OpfPrime &prime, bool subtract_p,
              const std::string &prefix)
{
    const unsigned nbytes = (prime.k + 16) / 8;
    const char *op0 = subtract_p ? "sub" : "add";
    const char *opc = subtract_p ? "sbc" : "adc";

    for (int round = 0; round < 2; round++) {
        b.comment(csprintf("fold round %d: %s c * p (LSW/MSW shortcut)",
                           round, subtract_p ? "subtract" : "add"));
        // mask = -c; masked u bytes for the MSW.
        b.ins("mov r23, r20");
        b.ins("neg r23");
        b.ins("ldi r26, lo8(%u)", prime.u);
        b.ins("and r26, r23");
        b.ins("ldi r27, hi8(%u)", prime.u);
        b.ins("and r27, r23");

        // LSW: p's least significant word is 1, so subtract/add c.
        b.ins("lds r22, RES+0");
        b.ins("%s r22, r20", op0);
        b.ins("sts RES+0, r22");
        for (unsigned t = 1; t < 4; t++) {
            b.ins("lds r22, RES+%u", t);
            b.ins("%s r22, r21", opc);
            b.ins("sts RES+%u, r22", t);
        }

        // Rare carry/borrow ripple through the zero middle words.
        // The ripple block is 5 words per byte (lds/adc/sts); beyond
        // the +-64-word BRCC reach (fields over ~160 bits) a
        // branch-over-rjmp pair is emitted instead, preserving the
        // short form (and its Table I cycle counts) for small fields.
        std::string norip = csprintf("%s_norip_%d", prefix.c_str(), round);
        if ((nbytes - 8) * 5 <= 62) {
            b.ins("brcc %s", norip.c_str());
        } else {
            std::string rip = csprintf("%s_rip_%d", prefix.c_str(), round);
            b.ins("brcs %s", rip.c_str());
            b.ins("rjmp %s", norip.c_str());
            b.label(rip);
        }
        for (unsigned t = 4; t < nbytes - 4; t++) {
            b.ins("lds r22, RES+%u", t);
            b.ins("%s r22, r21", opc);
            b.ins("sts RES+%u, r22", t);
        }
        b.label(norip);

        // MSW: p's most significant word is u << 16.
        for (unsigned t = nbytes - 4; t < nbytes; t++) {
            const char *src = t == nbytes - 2 ? "r26"
                            : t == nbytes - 1 ? "r27" : "r21";
            b.ins("lds r22, RES+%u", t);
            b.ins("%s r22, %s", opc, src);
            b.ins("sts RES+%u, r22", t);
        }

        // c -= carry/borrow out of the MSW chain.
        b.ins("sbc r20, r21");
    }
}

void
emitHeader(AsmBuilder &b, const OpfPrime &prime)
{
    b.ins(".equ RES = 0x%04x", OpfMemoryMap::resultAddr);
    b.ins(".equ QBUF = 0x%04x", OpfMemoryMap::qBufAddr);
    b.ins(".equ MACCR = 0x%02x", 0x3c);
    b.comment(csprintf("OPF p = %u * 2^%u + 1", prime.u, prime.k));
}

/** Register holding accumulator byte @p k of the native multiplier. */
std::string
accNat(unsigned k)
{
    return csprintf("r%u", 2 + k);
}

} // anonymous namespace

/**
 * Column-wise schedule with two alternating carry-catcher registers
 * (r19/r20), so no carry ever ripples beyond the current column.
 */
void
emitNativeMulBlock(AsmBuilder &b, const std::vector<unsigned> &a_regs,
                   const std::vector<unsigned> &b_regs, unsigned base)
{
    const unsigned na = a_regs.size(), nb = b_regs.size();
    const unsigned kmax = na + nb - 2;
    unsigned catcher = 19, other = 20;

    for (unsigned k = 0; k <= kmax; k++) {
        if (k == 0) {
            b.ins("clr r%u", catcher);
        } else {
            // Merge the previous catcher (destined for byte
            // base+k+1) and start a fresh one with its carry.
            b.ins("add %s, r%u", accNat(base + k + 1).c_str(), other);
            b.ins("clr r%u", catcher);
            b.ins("rol r%u", catcher);
        }
        for (unsigned i = 0; i < na; i++) {
            if (k < i || k - i >= nb)
                continue;
            unsigned j = k - i;
            b.ins("mul r%u, r%u", a_regs[i], b_regs[j]);
            b.ins("add %s, r0", accNat(base + k).c_str());
            b.ins("adc %s, r1", accNat(base + k + 1).c_str());
            b.ins("adc r%u, r21", catcher);
        }
        std::swap(catcher, other);
    }
    // Last catcher lands in byte base+kmax+2 (the 72-bit accumulator
    // bound guarantees no carry beyond it).
    b.ins("add %s, r%u", accNat(base + kmax + 2).c_str(), other);
}

void
emitIseMulBlock(AsmBuilder &b, unsigned b_word, bool load_a_direct,
                unsigned a_word, bool stage_next, unsigned next_a_word)
{
    if (load_a_direct)
        for (unsigned t = 0; t < 4; t++)
            b.ins("ldd r%u, Y+%u", 16 + t, 4 * a_word + t);
    std::vector<std::string> slots;
    if (stage_next)
        for (unsigned t = 0; t < 4; t++)
            slots.push_back(
                csprintf("ldd r%u, Y+%u", 20 + t, 4 * next_a_word + t));
    while (slots.size() < 5)
        slots.push_back("nop");
    for (unsigned t = 0; t < 4; t++) {
        b.ins("ldd r24, Z+%u", 4 * b_word + t);
        b.line(slots[t]);
    }
    b.line(slots[4]);
    if (stage_next) {
        b.ins("movw r16, r20");
        b.ins("movw r18, r22");
    }
}

namespace
{

/** Shift the native accumulator r2..r10 right by one 32-bit word. */
void
emitNativeShift(AsmBuilder &b)
{
    b.ins("movw r2, r6");
    b.ins("movw r4, r8");
    b.ins("mov r6, r10");
    b.ins("clr r7");
    b.ins("clr r8");
    b.ins("clr r9");
    b.ins("clr r10");
}

} // anonymous namespace

std::string
genOpfAddSub(const OpfPrime &prime, bool subtract)
{
    const unsigned nbytes = (prime.k + 16) / 8;
    AsmBuilder b;
    emitHeader(b, prime);
    b.comment(subtract ? "modular subtraction a - b (mod p)"
                       : "modular addition a + b (mod p)");
    b.ins("clr r21");

    // Byte-wise a +- b with the carry chain, streamed to RES.
    for (unsigned t = 0; t < nbytes; t++) {
        b.ins("ldd r18, Y+%u", t);
        b.ins("ldd r19, Z+%u", t);
        if (t == 0)
            b.ins(subtract ? "sub r18, r19" : "add r18, r19");
        else
            b.ins(subtract ? "sbc r18, r19" : "adc r18, r19");
        b.ins("sts RES+%u, r18", t);
    }

    // c = carry (resp. borrow) bit of the top byte.
    b.ins("clr r20");
    b.ins("rol r20");

    emitFinalFold(b, prime, /*subtract_p=*/!subtract,
                  subtract ? "sf" : "af");
    b.ins("ret");
    return b.str();
}

std::string
genOpfMulNative(const OpfPrime &prime)
{
    const unsigned s = prime.k / 32 + 1;
    AsmBuilder b;
    emitHeader(b, prime);
    b.comment("FIPS Montgomery multiplication, native AVR variant");
    b.comment("acc = r2..r10 (72 bit); A cache r11..r14; B cache "
              "r15..r18; catchers r19/r20; zero r21; u in r24:r25");

    b.ins("clr r21");
    for (unsigned k = 0; k < 9; k++)
        b.ins("clr %s", accNat(k).c_str());
    b.ins("ldi r24, lo8(%u)", prime.u);
    b.ins("ldi r25, hi8(%u)", prime.u);

    std::vector<unsigned> a_regs = {11, 12, 13, 14};
    std::vector<unsigned> b_regs = {15, 16, 17, 18};
    std::vector<unsigned> u_regs = {24, 25};

    auto load_word = [&](const std::vector<unsigned> &regs, char ptr,
                         unsigned word) {
        for (unsigned t = 0; t < 4; t++)
            b.ins("ldd r%u, %c+%u", regs[t], ptr, 4 * word + t);
    };
    auto load_q = [&](unsigned word) {
        for (unsigned t = 0; t < 4; t++)
            b.ins("lds r%u, QBUF+%u", b_regs[t], 4 * word + t);
    };

    for (unsigned i = 0; i < 2 * s; i++) {
        b.comment(csprintf("--- column %u ---", i));
        // Multiplication MACs a[j] * b[i-j].
        unsigned j_lo = i < s ? 0 : i - s + 1;
        unsigned j_hi = i < s ? i : s - 1;
        for (unsigned j = j_lo; i < 2 * s - 1 && j <= j_hi; j++) {
            load_word(a_regs, 'Y', j);
            load_word(b_regs, 'Z', i - j);
            emitNativeMulBlock(b, a_regs, b_regs, 0);
        }
        // Reduction MAC q[i-s+1] * (u << 16) lands in columns
        // s-1 .. 2s-2.
        if (i + 1 >= s && i <= 2 * s - 2) {
            unsigned jq = i - (s - 1);
            b.comment(csprintf("reduction term q[%u] * u << 16", jq));
            load_q(jq);
            emitNativeMulBlock(b, b_regs, u_regs, 2);
        }

        if (i < s) {
            // q[i] = -acc_low (since -p^-1 = -1 mod 2^32); store it
            // and clear the low word with the p[0] = 1 term.
            b.comment(csprintf("q[%u] = -T mod 2^32; acc += q[%u]", i, i));
            for (unsigned t = 0; t < 4; t++) {
                b.ins("mov r%u, %s", b_regs[t], accNat(t).c_str());
                b.ins("com r%u", b_regs[t]);
            }
            // The last COM left C = 1: the +1 of the two's complement.
            for (unsigned t = 0; t < 4; t++)
                b.ins("adc r%u, r21", b_regs[t]);
            for (unsigned t = 0; t < 4; t++)
                b.ins("sts QBUF+%u, r%u", 4 * i + t, b_regs[t]);
            // acc += q (p0 term) and propagate.
            b.ins("add r2, r15");
            b.ins("adc r3, r16");
            b.ins("adc r4, r17");
            b.ins("adc r5, r18");
            for (unsigned k = 4; k < 9; k++)
                b.ins("adc %s, r21", accNat(k).c_str());
        } else {
            // Emit result word i - s.
            for (unsigned t = 0; t < 4; t++)
                b.ins("sts RES+%u, %s", 4 * (i - s) + t,
                      accNat(t).c_str());
        }
        emitNativeShift(b);
    }

    // Final carry word (<= 1) folded with the LSW/MSW shortcut.
    b.comment("final conditional subtraction");
    b.ins("mov r20, r2");
    emitFinalFold(b, prime, /*subtract_p=*/true, "mf");
    b.ins("ret");
    return b.str();
}

std::string
genOpfMulIse(const OpfPrime &prime)
{
    const unsigned s = prime.k / 32 + 1;
    AsmBuilder b;
    emitHeader(b, prime);
    b.comment("FIPS Montgomery multiplication, (32x4)-bit MAC variant");
    b.comment("acc = R0..R8 (hardware); A operand R16..R19; staging "
              "r20..r23; trigger R24; zero r25; q temps r10..r13");

    b.ins("clr r25");
    // Both MAC access mechanisms on: Algorithm 2 for the multiply
    // MACs, Algorithm 1 (SWAP) for the reduction MACs.
    b.ins("ldi r18, 0x03");
    b.ins("out MACCR, r18");
    for (unsigned k = 0; k < 9; k++)
        b.ins("clr r%u", k);


    /** Reduction MAC via SWAPs: acc += q[jq] * u << 16. */
    auto emit_reduction = [&](unsigned jq) {
        b.comment(csprintf("reduction term q[%u] * u << 16 (Alg. 1)", jq));
        // A operand := u << 16 (bytes 0, 0, u_lo, u_hi).
        b.ins("ldi r16, 0");
        b.ins("ldi r17, 0");
        b.ins("ldi r18, lo8(%u)", prime.u);
        b.ins("ldi r19, hi8(%u)", prime.u);
        for (unsigned t = 0; t < 4; t++)
            b.ins("lds r%u, QBUF+%u", 10 + t, 4 * jq + t);
        for (unsigned t = 0; t < 4; t++) {
            b.ins("swap r%u", 10 + t);
            b.ins("swap r%u", 10 + t);
        }
    };

    for (unsigned i = 0; i < 2 * s; i++) {
        b.comment(csprintf("--- column %u ---", i));
        unsigned j_lo = i < s ? 0 : i - s + 1;
        unsigned j_hi = i < s ? i : s - 1;
        if (i < 2 * s - 1) {
            for (unsigned j = j_lo; j <= j_hi; j++) {
                bool first = j == j_lo;
                bool has_next = j < j_hi;
                emitIseMulBlock(b, i - j, first, j, has_next, j + 1);
            }
        }
        if (i + 1 >= s && i <= 2 * s - 2)
            emit_reduction(i - (s - 1));

        if (i < s) {
            b.comment(csprintf("q[%u] = -T mod 2^32; acc += q[%u]", i, i));
            for (unsigned t = 0; t < 4; t++) {
                b.ins("mov r%u, r%u", 10 + t, t);
                b.ins("com r%u", 10 + t);
            }
            for (unsigned t = 0; t < 4; t++)
                b.ins("adc r%u, r25", 10 + t);
            for (unsigned t = 0; t < 4; t++)
                b.ins("sts QBUF+%u, r%u", 4 * i + t, 10 + t);
            b.ins("add r0, r10");
            b.ins("adc r1, r11");
            b.ins("adc r2, r12");
            b.ins("adc r3, r13");
            for (unsigned k = 4; k < 9; k++)
                b.ins("adc r%u, r25", k);
        } else {
            for (unsigned t = 0; t < 4; t++)
                b.ins("sts RES+%u, r%u", 4 * (i - s) + t, t);
        }
        // Shift acc right one word.
        b.ins("movw r0, r4");
        b.ins("movw r2, r6");
        b.ins("mov r4, r8");
        b.ins("clr r5");
        b.ins("clr r6");
        b.ins("clr r7");
        b.ins("clr r8");
    }

    b.comment("final conditional subtraction (MAC unit off)");
    b.ins("out MACCR, r25");
    b.ins("mov r20, r0");
    b.ins("clr r21");
    emitFinalFold(b, prime, /*subtract_p=*/true, "if");
    b.ins("ret");
    return b.str();
}

std::string
genMontInverseBytes(const std::vector<uint8_t> &p_bytes,
                    uint32_t load_base)
{
    const unsigned nbytes = p_bytes.size();      // 20 for 160-bit
    const unsigned nv = nbytes + 1;              // working width: 21
    AsmBuilder b;
    b.ins(".equ BASE = 0x%04x", load_base);
    b.ins(".equ RES = 0x%04x", OpfMemoryMap::resultAddr);
    b.ins(".equ UB = 0x%04x", OpfMemoryMap::uBufAddr);
    b.ins(".equ VB = 0x%04x", OpfMemoryMap::vBufAddr);
    b.ins(".equ RB = 0x%04x", OpfMemoryMap::rBufAddr);
    b.ins(".equ SB = 0x%04x", OpfMemoryMap::sBufAddr);
    b.comment("Kaliski Montgomery inverse: RES = a^-1 * 2^n mod p");
    b.comment("phase-1 working set u/v/r/s in SRAM; k counter r24:r25");

    /** Byte i of the prime. */
    auto pbyte = [&](unsigned i) -> unsigned {
        return i < nbytes ? p_bytes[i] : 0;
    };

    /*
     * The subroutines live past the main loop; beyond 160 bits the
     * routine outgrows RCALL's +/-2K-word reach, so wide fields use
     * the two-word CALL. CALL targets are absolute, while the
     * assembler numbers labels from the start of this routine, so the
     * flash load address (BASE) is added back in. 160-bit keeps RCALL
     * and its paper-pinned cycle counts (Table I).
     */
    auto callSub = [&](const char *name) {
        if (nbytes <= 20)
            b.ins("rcall %s", name);
        else
            b.ins("call BASE+%s", name);
    };

    // --- Initialization ----------------------------------------------
    b.ins("clr r21");
    b.ins("clr r24");
    b.ins("clr r25");
    for (unsigned i = 0; i < nv; i++) {
        if (pbyte(i) || i == 0) {
            b.ins("ldi r18, %u", i < nbytes ? pbyte(i) : 0);
            b.ins("sts UB+%u, r18", i);
        } else {
            b.ins("sts UB+%u, r21", i);
        }
    }
    for (unsigned i = 0; i < nbytes; i++) {
        b.ins("ldd r18, Y+%u", i);
        b.ins("sts VB+%u, r18", i);
    }
    b.ins("sts VB+%u, r21", nbytes);
    for (unsigned i = 0; i < nv; i++)
        b.ins("sts RB+%u, r21", i);
    b.ins("ldi r18, 1");
    b.ins("sts SB+0, r18");
    for (unsigned i = 1; i < nv; i++)
        b.ins("sts SB+%u, r21", i);

    // --- Phase 1 main loop -------------------------------------------
    b.label("inv_loop");
    b.ins("lds r18, UB+0");
    b.ins("sbrs r18, 0");
    b.ins("rjmp inv_u_even");
    b.ins("lds r18, VB+0");
    b.ins("sbrs r18, 0");
    b.ins("rjmp inv_v_even");
    callSub("inv_cmp_uv");
    b.ins("brlo inv_v_big");   // u < v
    b.ins("breq inv_v_big");   // u == v routes to the v arm
    b.comment("u > v: u = (u - v)/2; r += s; s <<= 1");
    callSub("inv_sub_uv");
    callSub("inv_shr_u");
    callSub("inv_add_rs");
    callSub("inv_shl_s");
    b.ins("adiw r24, 1");
    b.ins("rjmp inv_loop");
    b.label("inv_v_big");
    b.comment("v >= u: v = (v - u)/2; s += r; r <<= 1");
    callSub("inv_sub_vu");
    callSub("inv_shr_v");   // leaves OR of v's bytes in r20
    callSub("inv_add_sr");
    callSub("inv_shl_r");
    b.ins("adiw r24, 1");
    b.ins("tst r20");
    b.ins("breq inv_done");
    b.ins("rjmp inv_loop");
    b.label("inv_u_even");
    callSub("inv_shr_u");
    callSub("inv_shl_s");
    b.ins("adiw r24, 1");
    b.ins("rjmp inv_loop");
    b.label("inv_v_even");
    callSub("inv_shr_v");   // v was even and > 0: cannot hit zero
    callSub("inv_shl_r");
    b.ins("adiw r24, 1");
    b.ins("rjmp inv_loop");

    // --- Epilogue: reduce r, negate, phase 2 --------------------------
    b.label("inv_done");
    callSub("inv_cmp_rp");
    b.ins("brlo inv_no_rsub");
    callSub("inv_sub_rp");
    b.label("inv_no_rsub");
    b.comment("RES = p - r (phase-1 result is -a^-1 * 2^k)");
    for (unsigned i = 0; i < nbytes; i++) {
        b.ins("ldi r18, %u", pbyte(i));
        b.ins("lds r19, RB+%u", i);
        b.ins(i == 0 ? "sub r18, r19" : "sbc r18, r19");
        b.ins("sts RES+%u, r18", i);
    }
    b.comment("phase 2: k - n modular halvings");
    unsigned n_bits = 8 * nbytes;
    b.ins("subi r24, %u", n_bits & 0xff);
    b.ins("sbci r25, %u", (n_bits >> 8) & 0xff);
    b.label("inv_p2loop");
    b.ins("mov r18, r24");
    b.ins("or r18, r25");
    b.ins("breq inv_p2done");
    b.ins("lds r18, RES+0");
    b.ins("sbrs r18, 0");
    b.ins("rjmp inv_p2even");
    callSub("inv_add_res_p");  // leaves carry-out in r23
    b.ins("rjmp inv_p2shift");
    b.label("inv_p2even");
    b.ins("clr r23");
    b.label("inv_p2shift");
    b.ins("ror r23");             // C <- carry bit
    callSub("inv_ror_res");    // shifts RES right through C
    b.ins("sbiw r24, 1");
    b.ins("rjmp inv_p2loop");
    b.label("inv_p2done");
    b.ins("ret");

    // --- Subroutines ---------------------------------------------------
    auto shr = [&](const char *name, const char *buf, bool track_zero) {
        b.label(name);
        b.ins("clc");
        if (track_zero)
            b.ins("clr r20");
        for (int i = nv - 1; i >= 0; i--) {
            b.ins("lds r18, %s+%d", buf, i);
            b.ins("ror r18");
            b.ins("sts %s+%d, r18", buf, i);
            if (track_zero)
                b.ins("or r20, r18");  // OR leaves the carry untouched
        }
        b.ins("ret");
    };
    shr("inv_shr_u", "UB", false);
    shr("inv_shr_v", "VB", true);

    auto shl = [&](const char *name, const char *buf) {
        b.label(name);
        b.ins("clc");
        for (unsigned i = 0; i < nv; i++) {
            b.ins("lds r18, %s+%u", buf, i);
            b.ins("rol r18");
            b.ins("sts %s+%u, r18", buf, i);
        }
        b.ins("ret");
    };
    shl("inv_shl_r", "RB");
    shl("inv_shl_s", "SB");

    auto sub2 = [&](const char *name, const char *dst, const char *src) {
        b.label(name);
        for (unsigned i = 0; i < nv; i++) {
            b.ins("lds r18, %s+%u", dst, i);
            b.ins("lds r19, %s+%u", src, i);
            b.ins(i == 0 ? "sub r18, r19" : "sbc r18, r19");
            b.ins("sts %s+%u, r18", dst, i);
        }
        b.ins("ret");
    };
    sub2("inv_sub_uv", "UB", "VB");
    sub2("inv_sub_vu", "VB", "UB");

    auto add2 = [&](const char *name, const char *dst, const char *src) {
        b.label(name);
        for (unsigned i = 0; i < nv; i++) {
            b.ins("lds r18, %s+%u", dst, i);
            b.ins("lds r19, %s+%u", src, i);
            b.ins(i == 0 ? "add r18, r19" : "adc r18, r19");
            b.ins("sts %s+%u, r18", dst, i);
        }
        b.ins("ret");
    };
    add2("inv_add_rs", "RB", "SB");
    add2("inv_add_sr", "SB", "RB");

    b.label("inv_cmp_uv");
    for (unsigned i = 0; i < nv; i++) {
        b.ins("lds r18, UB+%u", i);
        b.ins("lds r19, VB+%u", i);
        b.ins(i == 0 ? "cp r18, r19" : "cpc r18, r19");
    }
    b.ins("ret");

    b.label("inv_cmp_rp");
    for (unsigned i = 0; i < nv; i++) {
        b.ins("lds r18, RB+%u", i);
        b.ins("ldi r19, %u", i < nbytes ? pbyte(i) : 0);
        b.ins(i == 0 ? "cp r18, r19" : "cpc r18, r19");
    }
    b.ins("ret");

    b.label("inv_sub_rp");
    for (unsigned i = 0; i < nv; i++) {
        b.ins("lds r18, RB+%u", i);
        b.ins("ldi r19, %u", i < nbytes ? pbyte(i) : 0);
        b.ins(i == 0 ? "sub r18, r19" : "sbc r18, r19");
        b.ins("sts RB+%u, r18", i);
    }
    b.ins("ret");

    b.label("inv_add_res_p");
    for (unsigned i = 0; i < nbytes; i++) {
        b.ins("ldi r19, %u", pbyte(i));
        b.ins("lds r18, RES+%u", i);
        b.ins(i == 0 ? "add r18, r19" : "adc r18, r19");
        b.ins("sts RES+%u, r18", i);
    }
    b.ins("clr r23");
    b.ins("rol r23");  // capture the carry out of the addition
    b.ins("ret");

    b.label("inv_ror_res");
    for (int i = nbytes - 1; i >= 0; i--) {
        b.ins("lds r18, RES+%d", i);
        b.ins("ror r18");
        b.ins("sts RES+%d, r18", i);
    }
    b.ins("ret");

    return b.str();
}

std::string
genOpfMontInverse(const OpfPrime &prime, uint32_t load_base)
{
    const unsigned nbytes = (prime.k + 16) / 8;
    std::vector<uint8_t> p_bytes(nbytes, 0);
    p_bytes[0] = 1;
    p_bytes[nbytes - 2] = static_cast<uint8_t>(prime.u);
    p_bytes[nbytes - 1] = static_cast<uint8_t>(prime.u >> 8);
    return genMontInverseBytes(p_bytes, load_base);
}

} // namespace jaavr
