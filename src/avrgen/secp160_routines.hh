/**
 * @file
 * Generators for the secp160r1 field-arithmetic assembly — the
 * "separate set of assembly-optimized functions" the paper uses for
 * its standardized reference curve (Section V-B): Gura-style hybrid
 * multiplication followed by the dedicated pseudo-Mersenne reduction
 * for p = 2^160 - 2^31 - 1 (2^160 = 2^31 + 1 mod p, so the high half
 * of the product folds in with shifts and additions, not
 * multiplications — which is also why this prime profits less from
 * the MAC unit than an OPF does).
 *
 * Same calling convention as the OPF routines: Y = &a, Z = &b, result
 * at OpfMemoryMap::resultAddr, values incompletely reduced in
 * [0, 2^160).
 */

#ifndef JAAVR_AVRGEN_SECP160_ROUTINES_HH
#define JAAVR_AVRGEN_SECP160_ROUTINES_HH

#include <string>
#include <vector>

namespace jaavr
{

/** Extra scratch areas used by the secp160r1 multiplication. */
struct Secp160MemoryMap
{
    static constexpr uint16_t tBufAddr = 0x02c0;  ///< 320-bit product
    static constexpr uint16_t wBufAddr = 0x02f0;  ///< first fold (24 B)
    static constexpr uint16_t hsBufAddr = 0x0310; ///< h >> 1 scratch
};

/** The prime 2^160 - 2^31 - 1 as little-endian bytes. */
std::vector<uint8_t> secp160r1PrimeBytes();

/** Modular addition (subtraction when @p subtract). */
std::string genSecp160AddSub(bool subtract);

/**
 * Plain (non-Montgomery) modular multiplication: 160x160-bit product
 * scanning followed by the two-level 2^160 = 2^31 + 1 fold.
 */
std::string genSecp160Mul();

/**
 * The MAC-accelerated variant (requires CpuMode::ISE): the 25 product
 * blocks run on the (32x4)-bit MAC unit via Algorithm 2, but the
 * reduction remains additive — the ablation data point quantifying
 * how much of the OPF advantage comes from the multiplicative
 * reduction (bench_ablation_opf).
 */
std::string genSecp160MulIse();

/** Kaliski inverse for this prime (a^-1 * 2^160 mod p). */
std::string genSecp160Inverse();

} // namespace jaavr

#endif // JAAVR_AVRGEN_SECP160_ROUTINES_HH
