/**
 * @file
 * Harness binding the generated OPF assembly routines to the JAAVR
 * machine model: assembles them, loads them into flash, marshals
 * operands, and measures cycle counts. This is the measurement
 * apparatus behind Table I.
 */

#ifndef JAAVR_AVRGEN_OPF_HARNESS_HH
#define JAAVR_AVRGEN_OPF_HARNESS_HH

#include <memory>

#include "avr/machine.hh"
#include "avrasm/assembler.hh"
#include "avrasm/symbol_table.hh"
#include "avrgen/opf_routines.hh"
#include "field/opf_field.hh"

namespace jaavr
{

/** Result of running one OPF routine on the simulator. */
struct OpfRun
{
    OpfField::Words result;
    uint64_t cycles;
    uint64_t instructions = 0; ///< dynamic instructions retired
    Trap trap;                 ///< ISS trap, kind None on a clean run
};

/**
 * A time-redundant routine execution (see DESIGN.md, "Fault model &
 * hardening"): the routine runs twice and the results are compared.
 * A transient fault — the FaultInjector's plans fire exactly once —
 * perturbs at most one of the runs, so a mismatch or a trap in
 * either run flags the fault.
 */
struct OpfCheckedRun
{
    OpfRun first;          ///< the run whose result would be consumed
    bool redundantOk;      ///< second run matched (result and trap)
    bool coherentOk;       ///< structural self-check on the result

    bool ok() const
    {
        return first.trap.kind == TrapKind::None && redundantOk &&
               coherentOk;
    }
};

class OpfAvrLibrary
{
  public:
    /**
     * Assemble the routines for @p prime and load them into a machine
     * in @p mode. The multiplication uses the MAC-unit variant when
     * the mode is ISE, the native variant otherwise.
     */
    OpfAvrLibrary(const OpfPrime &prime, CpuMode mode);

    CpuMode mode() const { return machine_->mode(); }
    const OpfPrime &prime() const { return opf; }

    /** a + b (mod p), incompletely reduced; measured on the ISS. */
    OpfRun add(const OpfField::Words &a, const OpfField::Words &b);

    /** a - b (mod p). */
    OpfRun sub(const OpfField::Words &a, const OpfField::Words &b);

    /** Montgomery product a * b * R^-1 (mod p). */
    OpfRun mul(const OpfField::Words &a, const OpfField::Words &b);

    /** Montgomery-domain inverse a^-1 * 2^n (mod p), n = 32 s. */
    OpfRun inv(const OpfField::Words &a);

    /** Time-redundant multiplication with coherence self-check. */
    OpfCheckedRun mulChecked(const OpfField::Words &a,
                             const OpfField::Words &b);

    /**
     * Structural coherence of @p r: no trap, the value is inside the
     * incomplete s-word representation range, and its canonical
     * residue survives a host-side Montgomery-domain round trip.
     * These checks catch marshalling faults and gross corruption;
     * arithmetic faults that stay inside the representation range
     * need the time redundancy of mulChecked() (the incomplete
     * representation admits any value in [0, 2^(32 s)), so a plain
     * result < p test would reject legitimate clean results).
     */
    bool coherent(const OpfRun &r) const;

    /** Flash footprint of the four routines (paper: "ROM bytes"). */
    size_t romBytes() const;

    /** Underlying machine (for statistics inspection). */
    Machine &machine() { return *machine_; }

    /** Symbols of the loaded routines (for profiler attribution). */
    SymbolTable symbols() const;

  private:
    OpfRun run(uint32_t entry, const OpfField::Words &a,
               const OpfField::Words &b);

    static std::vector<uint8_t> toBytes(const OpfField::Words &w);
    OpfField::Words fromBytes(const std::vector<uint8_t> &bytes) const;

    OpfPrime opf;
    size_t s;
    OpfField fieldModel; ///< host-side model for coherence checks
    std::unique_ptr<Machine> machine_;
    Program progAdd, progSub, progMul, progInv;
    static constexpr uint32_t addEntry = 0x0000;
    static constexpr uint32_t subEntry = 0x1000;
    static constexpr uint32_t mulEntry = 0x2000;
    static constexpr uint32_t invEntry = 0x4000;
};

} // namespace jaavr

#endif // JAAVR_AVRGEN_OPF_HARNESS_HH
