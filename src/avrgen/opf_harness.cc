#include "avrgen/opf_harness.hh"

#include "support/logging.hh"

namespace jaavr
{

OpfAvrLibrary::OpfAvrLibrary(const OpfPrime &prime, CpuMode mode)
    : opf(prime), s(prime.k / 32 + 1), fieldModel(prime),
      machine_(std::make_unique<Machine>(mode))
{
    progAdd = assemble(genOpfAddSub(prime, false), "opf_add");
    progSub = assemble(genOpfAddSub(prime, true), "opf_sub");
    progMul = assemble(mode == CpuMode::ISE ? genOpfMulIse(prime)
                                            : genOpfMulNative(prime),
                       "opf_mul");
    progInv = assemble(genOpfMontInverse(prime, invEntry), "opf_inv");
    machine_->loadProgram(progAdd.words, addEntry);
    machine_->loadProgram(progSub.words, subEntry);
    machine_->loadProgram(progMul.words, mulEntry);
    machine_->loadProgram(progInv.words, invEntry);
}

std::vector<uint8_t>
OpfAvrLibrary::toBytes(const OpfField::Words &w)
{
    std::vector<uint8_t> out;
    out.reserve(w.size() * 4);
    for (uint32_t word : w) {
        out.push_back(static_cast<uint8_t>(word));
        out.push_back(static_cast<uint8_t>(word >> 8));
        out.push_back(static_cast<uint8_t>(word >> 16));
        out.push_back(static_cast<uint8_t>(word >> 24));
    }
    return out;
}

OpfField::Words
OpfAvrLibrary::fromBytes(const std::vector<uint8_t> &bytes) const
{
    OpfField::Words out(s, 0);
    for (size_t i = 0; i < bytes.size(); i++)
        out[i / 4] |= static_cast<uint32_t>(bytes[i]) << (8 * (i % 4));
    return out;
}

OpfRun
OpfAvrLibrary::run(uint32_t entry, const OpfField::Words &a,
                   const OpfField::Words &b)
{
    if (a.size() != s || b.size() != s)
        panic("OpfAvrLibrary: operand word count mismatch");
    machine_->writeBytes(OpfMemoryMap::aAddr, toBytes(a));
    machine_->writeBytes(OpfMemoryMap::bAddr, toBytes(b));
    machine_->setY(OpfMemoryMap::aAddr);
    machine_->setZ(OpfMemoryMap::bAddr);
    machine_->setSp(0x10ff);
    uint64_t insts = machine_->stats().instructions;
    RunResult rr = machine_->call(entry);
    OpfRun out;
    out.cycles = rr.cycles;
    out.trap = rr.trap;
    out.instructions = machine_->stats().instructions - insts;
    out.result = fromBytes(
        machine_->readBytes(OpfMemoryMap::resultAddr, 4 * s));
    return out;
}

OpfCheckedRun
OpfAvrLibrary::mulChecked(const OpfField::Words &a,
                          const OpfField::Words &b)
{
    OpfCheckedRun out;
    out.first = run(mulEntry, a, b);
    OpfRun second = run(mulEntry, a, b);
    out.redundantOk = second.result == out.first.result &&
                      second.trap == out.first.trap;
    out.coherentOk = coherent(out.first);
    return out;
}

bool
OpfAvrLibrary::coherent(const OpfRun &r) const
{
    if (r.trap.kind != TrapKind::None)
        return false;
    if (r.result.size() != s)
        return false;
    // The incomplete representation bounds the value by 2^(32 s);
    // fromBytes() guarantees that structurally, so the meaningful
    // remaining check is the Montgomery round trip on the canonical
    // residue: canonical(r) must re-enter and leave the Montgomery
    // domain unchanged under the host model.
    BigUInt canonical = fieldModel.canonical(r.result);
    if (!(canonical < fieldModel.modulus()))
        return false;
    OpfField::Words mont = fieldModel.toMont(canonical);
    return fieldModel.fromMont(mont) == canonical;
}

OpfRun
OpfAvrLibrary::add(const OpfField::Words &a, const OpfField::Words &b)
{
    return run(addEntry, a, b);
}

OpfRun
OpfAvrLibrary::sub(const OpfField::Words &a, const OpfField::Words &b)
{
    return run(subEntry, a, b);
}

OpfRun
OpfAvrLibrary::mul(const OpfField::Words &a, const OpfField::Words &b)
{
    return run(mulEntry, a, b);
}

OpfRun
OpfAvrLibrary::inv(const OpfField::Words &a)
{
    return run(invEntry, a, OpfField::Words(s, 0));
}

SymbolTable
OpfAvrLibrary::symbols() const
{
    SymbolTable st;
    st.addProgram("opf_add", progAdd, addEntry);
    st.addProgram("opf_sub", progSub, subEntry);
    st.addProgram("opf_mul", progMul, mulEntry);
    st.addProgram("opf_inv", progInv, invEntry);
    return st;
}

size_t
OpfAvrLibrary::romBytes() const
{
    return progAdd.romBytes() + progSub.romBytes() + progMul.romBytes() +
           progInv.romBytes();
}

} // namespace jaavr
