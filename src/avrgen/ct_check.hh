/**
 * @file
 * Static constant-time checker for the generated AVR routines.
 *
 * The checker walks an assembled flash image with a secret-taint
 * lattice: registers, SREG flags and data-memory bytes are each
 * either public or secret-tainted, taint flows through every modeled
 * instruction, and both successors of every branch are always
 * explored (the walk is a dataflow fixpoint, not an execution). A
 * routine violates its timing contract when a *secret-tainted* value
 * reaches a timing-relevant sink:
 *
 *  - a conditional branch on a tainted SREG flag (BRBS/BRBC),
 *  - a skip on a tainted register (SBRC/SBRS/CPSE),
 *  - a load/store whose effective address is tainted (SRAM access
 *    patterns are observable through cache-less bus traces just as
 *    branches are through cycle counts — see src/avr/leakage.*),
 *  - an indirect jump/call through a tainted Z (IJMP/ICALL).
 *
 * Two contracts exist. ConstantTime is the paper's claim for the OPF
 * add/sub/mul routines; the only tolerated findings are the
 * explicitly waived final-fold ripple branches (Section III-A: the
 * carry ripples into the zero middle words with probability 2^-32,
 * and the paper takes the branch over a 2^-32 timing channel).
 * VariableTime documents the concession the paper itself makes for
 * the Kaliski inverse (Section V-B) and the secp160r1 pseudo-Mersenne
 * fold: secret-dependent *branches* are accepted as the algorithm's
 * nature, but tainted addresses/indirect jumps still fail — those are
 * never part of the algorithms' contract.
 *
 * The checker is conservative: statically unresolvable values are
 * treated as tainted, unsupported instructions are findings, and the
 * memory taint map only grows (an outer fixpoint re-runs the walk
 * until the map is stable), so a "pass" is a proof under the model,
 * not a heuristic. The model tracks *explicit* flows only: a value
 * written under secret-dependent control flow is not itself tainted
 * (implicit flows). That is the right precision here — every branch
 * that creates such control dependence is already reported as a
 * TaintedBranch at its own site, so the channel is never silent; it
 * is merely attributed to the branch rather than to every value
 * downstream of it. tools/jaavr-ctcheck drives this over every shipped
 * routine and emits CT_report.json.
 */

#ifndef JAAVR_AVRGEN_CT_CHECK_HH
#define JAAVR_AVRGEN_CT_CHECK_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace jaavr
{

/** Timing contract a routine is checked against. */
enum class CtContract : uint8_t
{
    ConstantTime, ///< no secret-dependent control flow or addresses
    VariableTime, ///< secret branches conceded; addresses still checked
};

/** Classification of one finding site. */
enum class CtFindingClass : uint8_t
{
    TaintedBranch,   ///< BRBS/BRBC on a secret-tainted flag
    TaintedSkip,     ///< SBRC/SBRS/CPSE on secret-tainted registers
    TaintedAddress,  ///< load/store through a secret-tainted address
    TaintedIndirect, ///< IJMP/ICALL through a secret-tainted Z
    Unsupported,     ///< instruction or state the model cannot prove
};

const char *ctContractName(CtContract c);
const char *ctFindingClassName(CtFindingClass c);

/** One deduplicated finding site (unique per (pc, class)). */
struct CtFinding
{
    uint32_t pc = 0;      ///< flash word address of the instruction
    CtFindingClass cls = CtFindingClass::Unsupported;
    std::string disasm;   ///< disassembly of the offending instruction
    bool waived = false;  ///< tolerated under the routine's contract
};

/** A byte range of data memory holding secret input. */
struct CtSecretRange
{
    uint16_t addr = 0;
    uint16_t len = 0;
};

/** What to check: entry point, contract, secrets, entry registers. */
struct CtCheckSpec
{
    std::string routine;  ///< name for the report
    uint32_t entry = 0;   ///< flash word address to start the walk at
    CtContract contract = CtContract::ConstantTime;
    std::vector<CtSecretRange> secrets;
    /** Concrete register values at entry ((index, value) pairs) —
     *  the harness calling convention (Y = &a, Z = &b). */
    std::vector<std::pair<uint8_t, uint8_t>> entryRegs;
    /**
     * ConstantTime only: number of distinct TaintedBranch sites that
     * are waived as the final-fold ripple shortcut. The waiver is
     * exact — if the routine has *more* tainted branch sites than
     * this, none are waived and the check fails, so a new
     * secret-dependent branch can never hide behind the allowance.
     */
    unsigned waivedBranches = 0;
};

/** Result of checking one routine. */
struct CtReport
{
    std::string routine;
    CtContract contract = CtContract::ConstantTime;
    bool pass = false;
    std::vector<CtFinding> findings; ///< sorted by pc, deduplicated
    uint64_t instsAnalyzed = 0;      ///< distinct (pc, callstack) states
    uint64_t memPasses = 0;          ///< outer memory-fixpoint rounds

    size_t waivedCount() const;
    size_t violationCount() const; ///< findings not waived
};

/**
 * Run the taint walk over @p flash (word-addressed image, as loaded
 * by Machine::loadProgram) according to @p spec.
 */
CtReport ctCheck(const std::vector<uint16_t> &flash,
                 const CtCheckSpec &spec);

} // namespace jaavr

#endif // JAAVR_AVRGEN_CT_CHECK_HH
