/**
 * @file
 * Generators for the hand-style AVR assembly OPF routines of the
 * paper (Sections III and IV-A), parameterized by the OPF prime:
 *
 *  - unrolled modular addition/subtraction with the carry-bit
 *    shortcut and the branch-less double subtraction of c*p that only
 *    touches the least and most significant words (the rare borrow
 *    ripple through the zero middle bytes is handled out of line,
 *    exactly as the paper describes);
 *  - the FIPS Montgomery multiplication, fully unrolled, in two
 *    variants: NATIVE (16 8-bit MULs per (32x32)-bit word MAC with a
 *    72-bit register accumulator — the "101-cycle inner loop"
 *    structure) and ISE (the MAC unit driven by Algorithm 2 for the
 *    s^2 multiply MACs and by re-interpreted SWAPs, Algorithm 1, for
 *    the s reduction MACs).
 *
 * Calling convention (fixed SRAM addresses, see OpfMemoryMap):
 * operand pointers in Y (a) and Z (b), result written to resultAddr.
 */

#ifndef JAAVR_AVRGEN_OPF_ROUTINES_HH
#define JAAVR_AVRGEN_OPF_ROUTINES_HH

#include <string>
#include <vector>

#include "nt/opf_prime.hh"

namespace jaavr
{

class AsmBuilder;

/**
 * Emit one native (8 * na x 8 * nb)-bit multiply-accumulate block
 * into the 72-bit register accumulator r2..r10 at byte offset
 * @p base: the column-scheduled 16-MUL structure behind the paper's
 * 101-cycle inner loop. Shared by the OPF and secp160r1 generators.
 */
void emitNativeMulBlock(AsmBuilder &b,
                        const std::vector<unsigned> &a_regs,
                        const std::vector<unsigned> &b_regs,
                        unsigned base);

/**
 * Emit one Algorithm-2 MAC block (requires ISE mode, MACCR load-mode
 * bit set): the four R24 loads of word @p b_word of the Z operand
 * trigger eight (32x4)-bit MACs into R0..R8; the five shadow slots
 * carry the staging loads of the next block's A word (or NOPs), and
 * two MOVWs commit the staged word to R16..R19 once the shadow has
 * drained. Shared by the OPF and secp160r1 ISE multipliers.
 */
void emitIseMulBlock(AsmBuilder &b, unsigned b_word, bool load_a_direct,
                     unsigned a_word, bool stage_next,
                     unsigned next_a_word);

/** Fixed data-memory layout shared by the routines and harness. */
struct OpfMemoryMap
{
    static constexpr uint16_t qBufAddr = 0x01c0;   ///< Montgomery q words
    static constexpr uint16_t resultAddr = 0x01e0; ///< routine output
    static constexpr uint16_t aAddr = 0x0200;      ///< operand a
    static constexpr uint16_t bAddr = 0x0220;      ///< operand b
    // Working set of the Montgomery-inverse routine: nbytes + 1 each
    // (the r/s coefficients grow to 2p), i.e. 33 bytes at 256 bits,
    // so the buffers are spaced 0x30 apart.
    static constexpr uint16_t uBufAddr = 0x0240;
    static constexpr uint16_t vBufAddr = 0x0270;
    static constexpr uint16_t rBufAddr = 0x02a0;
    static constexpr uint16_t sBufAddr = 0x02d0;
};

/**
 * Modular addition (or subtraction when @p subtract): result =
 * a +- b (mod p), incompletely reduced. Y = &a, Z = &b; the result is
 * written to OpfMemoryMap::resultAddr.
 */
std::string genOpfAddSub(const OpfPrime &prime, bool subtract);

/**
 * FIPS Montgomery multiplication, native-AVR variant (runs in CA and
 * FAST modes): result = a * b * R^-1 mod p, incompletely reduced.
 * Y = &a, Z = &b, result at resultAddr, q scratch at qBufAddr.
 */
std::string genOpfMulNative(const OpfPrime &prime);

/**
 * FIPS Montgomery multiplication using the (32x4)-bit MAC unit
 * (requires CpuMode::ISE). Same interface as the native variant.
 */
std::string genOpfMulIse(const OpfPrime &prime);

/**
 * Kaliski Montgomery inverse (looped; runs in all modes): computes
 * a^-1 * 2^n (mod p) for Y = &a into resultAddr, with n = the field
 * width. Phase 1 is the binary almost-inverse loop (shift/add/sub
 * subroutines over the four 21-byte working variables), phase 2 the
 * k - n modular halvings. Bit-exact mirror of nt/mont_inverse.hh, so
 * the host reference validates it word-for-word. Its cycle count is
 * what Table I's "Inversion" row measures; it is data-dependent,
 * which is the residual leakage the paper concedes for its
 * "constant runtime" rows (Section V-B).
 *
 * @p load_base is the flash word address the routine will be loaded
 * at. Fields up to 160 bits reach their subroutines with the
 * position-independent RCALL and ignore it; wider fields outgrow
 * RCALL's +/-2K-word range and need the absolute two-word CALL,
 * whose targets must account for the load address.
 */
std::string genOpfMontInverse(const OpfPrime &prime,
                              uint32_t load_base = 0);

/**
 * The same Kaliski inverse for an arbitrary prime given as
 * little-endian bytes (used by the secp160r1 routine set).
 */
std::string genMontInverseBytes(const std::vector<uint8_t> &p_bytes,
                                uint32_t load_base = 0);

} // namespace jaavr

#endif // JAAVR_AVRGEN_OPF_ROUTINES_HH
