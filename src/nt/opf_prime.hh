/**
 * @file
 * Optimal Prime Field primes: p = u * 2^k + 1 with u of at most
 * 16 bits (paper, Section II-A). Only the two most significant bytes
 * and the least significant byte of p are non-zero, which is what
 * makes the Montgomery reduction linear in word multiplications.
 */

#ifndef JAAVR_NT_OPF_PRIME_HH
#define JAAVR_NT_OPF_PRIME_HH

#include <functional>
#include <optional>

#include "bigint/big_uint.hh"
#include "support/random.hh"

namespace jaavr
{

/** An OPF prime p = u * 2^k + 1. */
struct OpfPrime
{
    uint32_t u;  ///< 16-bit multiplier (two AVR registers)
    unsigned k;  ///< power-of-two exponent (144 for 160-bit fields)
    BigUInt p;   ///< the prime itself
};

/** Construct p = u * 2^k + 1 (no primality check). */
OpfPrime makeOpf(uint32_t u, unsigned k);

/**
 * Search downward from @p u_start for the largest u <= u_start such
 * that p = u * 2^k + 1 is prime and @p accept (if given) returns true.
 * Returns nullopt if the search space is exhausted.
 */
std::optional<OpfPrime>
findOpfPrime(unsigned k, uint32_t u_start, Rng &rng,
             const std::function<bool(const OpfPrime &)> &accept = {});

/**
 * The paper's reference 160-bit OPF prime, p = 65356 * 2^144 + 1
 * (hex ff4c0000...0001). Primality is checked once and cached.
 */
const OpfPrime &paperOpfPrime();

/**
 * A 160-bit OPF prime with p = 1 (mod 3), as required by the GLV
 * curve family y^2 = x^3 + b (paper, Section II-D). Found by the
 * downward search with the congruence filter; deterministic.
 */
const OpfPrime &glvOpfPrime();

} // namespace jaavr

#endif // JAAVR_NT_OPF_PRIME_HH
