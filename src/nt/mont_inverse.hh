/**
 * @file
 * Kaliski's Montgomery inverse (the algorithm the paper uses for the
 * projective-to-affine conversion; Table I's "Inversion" row).
 *
 * Phase 1 (the "almost Montgomery inverse") computes r and k with
 * r = a^-1 * 2^k (mod p), n <= k <= 2n, using only shifts, adds and
 * subtracts. Phase 2 halves the result k - n times modulo p, giving
 * the Montgomery-domain inverse a^-1 * 2^n (mod p).
 *
 * This host implementation is the bit-exact reference for the
 * generated AVR assembly routine in src/avrgen.
 */

#ifndef JAAVR_NT_MONT_INVERSE_HH
#define JAAVR_NT_MONT_INVERSE_HH

#include <cstdint>

#include "bigint/big_uint.hh"

namespace jaavr
{

/** Result of the almost Montgomery inverse. */
struct AlmostInverse
{
    BigUInt r;   ///< a^-1 * 2^k (mod p)
    uint64_t k;  ///< exponent, bits(p) <= k <= 2*bits(p)
};

/** Phase 1: the almost Montgomery inverse of a mod the odd prime p. */
AlmostInverse almostMontInverse(const BigUInt &a, const BigUInt &p);

/**
 * Full Montgomery-domain inverse: a^-1 * 2^n (mod p) with
 * n = bits(p). Bit-exact mirror of the generated AVR routine.
 */
BigUInt montInverse(const BigUInt &a, const BigUInt &p, unsigned n);

} // namespace jaavr

#endif // JAAVR_NT_MONT_INVERSE_HH
