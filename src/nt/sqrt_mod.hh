/**
 * @file
 * Square roots modulo an odd prime (Tonelli-Shanks).
 */

#ifndef JAAVR_NT_SQRT_MOD_HH
#define JAAVR_NT_SQRT_MOD_HH

#include <optional>

#include "bigint/big_uint.hh"
#include "support/random.hh"

namespace jaavr
{

/**
 * Square root of @p a modulo the odd prime @p p.
 *
 * @return a value r with r^2 = a (mod p), or std::nullopt if a is a
 *         non-residue. The other root is p - r.
 *
 * Handles the full Tonelli-Shanks loop; the OPF primes used in this
 * project have 2-adicity >= 144, so the p = 3 (mod 4) shortcut alone
 * would not suffice.
 */
std::optional<BigUInt> sqrtMod(const BigUInt &a, const BigUInt &p, Rng &rng);

} // namespace jaavr

#endif // JAAVR_NT_SQRT_MOD_HH
