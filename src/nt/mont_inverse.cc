#include "nt/mont_inverse.hh"

#include "support/logging.hh"

namespace jaavr
{

AlmostInverse
almostMontInverse(const BigUInt &a, const BigUInt &p)
{
    if (a.isZero())
        panic("almostMontInverse: inversion of zero");
    BigUInt u = p, v = a % p;
    BigUInt r(0), s(1);
    uint64_t k = 0;

    while (!v.isZero()) {
        if (!u.isOdd()) {
            u = u >> 1;
            s = s << 1;
        } else if (!v.isOdd()) {
            v = v >> 1;
            r = r << 1;
        } else if (u > v) {
            u = (u - v) >> 1;
            r = r + s;
            s = s << 1;
        } else {
            // v >= u (equality routes here so u keeps the gcd).
            v = (v - u) >> 1;
            s = s + r;
            r = r << 1;
        }
        k++;
    }
    if (!u.isOne())
        panic("almostMontInverse: gcd(a, p) != 1");
    if (r >= p)
        r = r - p;
    // Here r = -a^-1 * 2^k; negate into [0, p).
    return AlmostInverse{p - r, k};
}

BigUInt
montInverse(const BigUInt &a, const BigUInt &p, unsigned n)
{
    AlmostInverse ai = almostMontInverse(a, p);
    if (ai.k < n)
        panic("montInverse: k < n");
    BigUInt x = ai.r;
    // Phase 2: k - n modular halvings.
    for (uint64_t i = n; i < ai.k; i++) {
        if (x.isOdd())
            x = (x + p) >> 1;
        else
            x = x >> 1;
    }
    return x;
}

} // namespace jaavr
