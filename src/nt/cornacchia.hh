/**
 * @file
 * Cornacchia's algorithm and the CM decomposition 4p = L^2 + 27 M^2
 * used to compute the exact group orders of j-invariant-0 curves
 * (the GLV family y^2 = x^3 + b).
 */

#ifndef JAAVR_NT_CORNACCHIA_HH
#define JAAVR_NT_CORNACCHIA_HH

#include <optional>

#include "bigint/big_uint.hh"
#include "support/random.hh"

namespace jaavr
{

/** A representation p = x^2 + d * y^2. */
struct CornacchiaSolution
{
    BigUInt x;
    BigUInt y;
};

/**
 * Solve p = x^2 + d*y^2 for an odd prime p and small d > 0.
 * Returns nullopt when no representation exists (i.e. -d is a
 * non-residue mod p or the descent fails the divisibility check).
 */
std::optional<CornacchiaSolution>
cornacchia(const BigUInt &p, uint32_t d, Rng &rng);

/**
 * Decomposition 4p = L^2 + 27 M^2 for a prime p = 1 (mod 3).
 * Derived from the d = 3 Cornacchia representation p = a^2 + 3 b^2 by
 * picking the variant of (a, b) whose second component is divisible
 * by 3. Panics if p != 1 (mod 3) or the representation is missing
 * (which cannot happen for a genuine prime).
 */
struct CmDecomposition
{
    BigUInt l; ///< |L|
    BigUInt m; ///< |M|
};

CmDecomposition cmDecompose4p(const BigUInt &p, Rng &rng);

} // namespace jaavr

#endif // JAAVR_NT_CORNACCHIA_HH
