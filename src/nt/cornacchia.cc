#include "nt/cornacchia.hh"

#include "nt/intsqrt.hh"
#include "nt/primality.hh"
#include "nt/sqrt_mod.hh"
#include "support/logging.hh"

namespace jaavr
{

std::optional<CornacchiaSolution>
cornacchia(const BigUInt &p, uint32_t d, Rng &rng)
{
    BigUInt dd(d);
    if (p <= dd)
        return std::nullopt;

    // r0 = sqrt(-d) mod p.
    BigUInt neg_d = p - (dd % p);
    auto r0 = sqrtMod(neg_d, p, rng);
    if (!r0)
        return std::nullopt;

    // Use the root in (p/2, p); either root works for the descent but
    // the classical presentation takes the larger one.
    BigUInt r = *r0;
    if (r < (p >> 1))
        r = p - r;

    // Euclidean descent: stop at the first remainder below sqrt(p).
    BigUInt a = p, b = r;
    BigUInt lim = isqrt(p);
    while (b > lim) {
        BigUInt t = a % b;
        a = b;
        b = t;
    }

    // Check p - b^2 = d * y^2 with y integral.
    BigUInt b2 = b * b;
    BigUInt rest = p - b2;
    BigUInt q, rem;
    BigUInt::divMod(rest, dd, q, rem);
    if (!rem.isZero())
        return std::nullopt;
    BigUInt y;
    if (!isPerfectSquare(q, y))
        return std::nullopt;
    return CornacchiaSolution{b, y};
}

CmDecomposition
cmDecompose4p(const BigUInt &p, Rng &rng)
{
    if ((p % BigUInt(3)).toUint64() != 1)
        panic("cmDecompose4p: p must be 1 mod 3");

    auto sol = cornacchia(p, 3, rng);
    if (!sol)
        panic("cmDecompose4p: no a^2 + 3 b^2 representation; "
              "p is not prime?");
    const BigUInt &a = sol->x, &b = sol->y;

    // 4p = (2a)^2 + 3 (2b)^2 = (a+3b)^2 + 3 (a-b)^2
    //    = (a-3b)^2 + 3 (a+b)^2; exactly one second component is
    // divisible by 3, giving 4p = L^2 + 27 M^2.
    struct Cand { BigUInt first, second; };
    BigUInt a3b_hi = a + BigUInt(3) * b;
    BigUInt ab_sum = a + b;
    BigUInt ab_diff = a >= b ? a - b : b - a;
    BigUInt a3b_lo = a >= BigUInt(3) * b ? a - BigUInt(3) * b
                                         : BigUInt(3) * b - a;
    Cand cands[] = {
        {a << 1, b << 1},
        {a3b_hi, ab_diff},
        {a3b_lo, ab_sum},
    };
    for (const Cand &c : cands) {
        BigUInt q, rem;
        BigUInt::divMod(c.second, BigUInt(3), q, rem);
        if (!rem.isZero())
            continue;
        CmDecomposition out{c.first, q};
        // Defensive verification of the identity.
        BigUInt check = out.l * out.l + BigUInt(27) * out.m * out.m;
        if (check != (p << 2))
            panic("cmDecompose4p: identity check failed");
        return out;
    }
    panic("cmDecompose4p: no candidate divisible by 3");
}

} // namespace jaavr
