#include "nt/sqrt_mod.hh"

#include "nt/primality.hh"
#include "support/logging.hh"

namespace jaavr
{

std::optional<BigUInt>
sqrtMod(const BigUInt &a_in, const BigUInt &p, Rng &rng)
{
    BigUInt a = a_in % p;
    if (a.isZero())
        return BigUInt(0);
    if (jacobi(a, p) != 1)
        return std::nullopt;

    if ((p.low32() & 3) == 3) {
        // r = a^((p+1)/4)
        BigUInt e = (p + BigUInt(1)) >> 2;
        return a.powMod(e, p);
    }

    // Tonelli-Shanks. Write p - 1 = q * 2^s with q odd.
    BigUInt pm1 = p - BigUInt(1);
    unsigned s = pm1.trailingZeros();
    BigUInt q = pm1 >> s;

    // Find a quadratic non-residue z.
    BigUInt z(2);
    while (jacobi(z, p) != -1)
        z = BigUInt(2) + BigUInt::random(rng, p - BigUInt(2));

    BigUInt c = z.powMod(q, p);
    BigUInt t = a.powMod(q, p);
    BigUInt r = a.powMod((q + BigUInt(1)) >> 1, p);
    unsigned m = s;

    while (!t.isOne()) {
        // Find the least i with t^(2^i) == 1.
        unsigned i = 0;
        BigUInt t2 = t;
        while (!t2.isOne()) {
            t2 = t2.mulMod(t2, p);
            i++;
            if (i == m)
                panic("sqrtMod: non-residue slipped through");
        }
        // b = c^(2^(m - i - 1))
        BigUInt b = c;
        for (unsigned j = 0; j + i + 1 < m; j++)
            b = b.mulMod(b, p);
        m = i;
        c = b.mulMod(b, p);
        t = t.mulMod(c, p);
        r = r.mulMod(b, p);
    }
    return r;
}

} // namespace jaavr
