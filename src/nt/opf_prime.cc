#include "nt/opf_prime.hh"

#include "nt/primality.hh"
#include "support/logging.hh"

namespace jaavr
{

OpfPrime
makeOpf(uint32_t u, unsigned k)
{
    if (u == 0 || u > 0xffff)
        fatal("makeOpf: u must be a non-zero 16-bit value (got %u)", u);
    OpfPrime o;
    o.u = u;
    o.k = k;
    o.p = (BigUInt(u) << k) + BigUInt(1);
    return o;
}

std::optional<OpfPrime>
findOpfPrime(unsigned k, uint32_t u_start, Rng &rng,
             const std::function<bool(const OpfPrime &)> &accept)
{
    for (uint32_t u = u_start; u >= 1; u--) {
        OpfPrime cand = makeOpf(u, k);
        if (accept && !accept(cand))
            continue;
        if (isProbablePrime(cand.p, rng))
            return cand;
        if (u == 1)
            break;
    }
    return std::nullopt;
}

const OpfPrime &
paperOpfPrime()
{
    static const OpfPrime prime = [] {
        OpfPrime o = makeOpf(65356, 144);
        Rng rng(0x0bf5);
        if (!isProbablePrime(o.p, rng))
            panic("paper OPF prime 65356 * 2^144 + 1 failed primality");
        return o;
    }();
    return prime;
}

const OpfPrime &
glvOpfPrime()
{
    static const OpfPrime prime = [] {
        Rng rng(0x61f6);
        // p = u * 2^144 + 1 = u + 1 (mod 3) since 2^144 = 1 (mod 3);
        // GLV needs p = 1 (mod 3), i.e. u = 0 (mod 3).
        auto found = findOpfPrime(144, 0xffff, rng,
            [](const OpfPrime &o) { return o.u % 3 == 0; });
        if (!found)
            panic("no GLV-compatible OPF prime found");
        return *found;
    }();
    return prime;
}

} // namespace jaavr
