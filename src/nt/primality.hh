/**
 * @file
 * Primality testing and quadratic-residue symbols.
 */

#ifndef JAAVR_NT_PRIMALITY_HH
#define JAAVR_NT_PRIMALITY_HH

#include "bigint/big_uint.hh"
#include "support/random.hh"

namespace jaavr
{

/**
 * Miller-Rabin probabilistic primality test.
 *
 * @param n      candidate
 * @param rng    randomness source for the bases
 * @param rounds number of random bases (error probability <= 4^-rounds)
 */
bool isProbablePrime(const BigUInt &n, Rng &rng, unsigned rounds = 40);

/**
 * Jacobi symbol (a / n) for odd n > 0. Returns -1, 0 or +1.
 * For prime n this is the Legendre symbol: +1 iff a is a non-zero
 * quadratic residue mod n.
 */
int jacobi(const BigUInt &a, const BigUInt &n);

} // namespace jaavr

#endif // JAAVR_NT_PRIMALITY_HH
