#include "nt/intsqrt.hh"

namespace jaavr
{

BigUInt
isqrt(const BigUInt &n)
{
    if (n.isZero())
        return BigUInt(0);
    // Newton iteration with a power-of-two starting point above the
    // root; monotonically decreasing, so terminate when it stops.
    BigUInt x = BigUInt::powerOfTwo(n.bitLength() / 2 + 1);
    for (;;) {
        BigUInt y = (x + n / x) >> 1;
        if (y >= x)
            return x;
        x = y;
    }
}

bool
isPerfectSquare(const BigUInt &n, BigUInt &root)
{
    BigUInt r = isqrt(n);
    if (r * r == n) {
        root = r;
        return true;
    }
    return false;
}

} // namespace jaavr
