#include "nt/primality.hh"

#include "support/logging.hh"

namespace jaavr
{

bool
isProbablePrime(const BigUInt &n, Rng &rng, unsigned rounds)
{
    if (n < BigUInt(2))
        return false;
    for (uint64_t small : {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}) {
        BigUInt s(small);
        if (n == s)
            return true;
        if ((n % s).isZero())
            return false;
    }

    // Write n - 1 = d * 2^r with d odd.
    BigUInt nm1 = n - BigUInt(1);
    unsigned r = nm1.trailingZeros();
    BigUInt d = nm1 >> r;

    for (unsigned i = 0; i < rounds; i++) {
        // Base in [2, n - 2].
        BigUInt a = BigUInt(2) + BigUInt::random(rng, n - BigUInt(3));
        BigUInt x = a.powMod(d, n);
        if (x.isOne() || x == nm1)
            continue;
        bool composite = true;
        for (unsigned j = 0; j + 1 < r; j++) {
            x = x.mulMod(x, n);
            if (x == nm1) {
                composite = false;
                break;
            }
        }
        if (composite)
            return false;
    }
    return true;
}

int
jacobi(const BigUInt &a_in, const BigUInt &n_in)
{
    if (!n_in.isOdd())
        panic("jacobi: n must be odd");
    BigUInt a = a_in % n_in;
    BigUInt n = n_in;
    int result = 1;
    while (!a.isZero()) {
        while (!a.isOdd()) {
            a = a >> 1;
            uint32_t n_mod8 = n.low32() & 7;
            if (n_mod8 == 3 || n_mod8 == 5)
                result = -result;
        }
        std::swap(a, n);
        if ((a.low32() & 3) == 3 && (n.low32() & 3) == 3)
            result = -result;
        a = a % n;
    }
    return n.isOne() ? result : 0;
}

} // namespace jaavr
