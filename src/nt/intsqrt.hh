/**
 * @file
 * Integer square root over BigUInt.
 */

#ifndef JAAVR_NT_INTSQRT_HH
#define JAAVR_NT_INTSQRT_HH

#include "bigint/big_uint.hh"

namespace jaavr
{

/** Floor of the square root of @p n. */
BigUInt isqrt(const BigUInt &n);

/** True iff @p n is a perfect square; @p root receives sqrt(n) if so. */
bool isPerfectSquare(const BigUInt &n, BigUInt &root);

} // namespace jaavr

#endif // JAAVR_NT_INTSQRT_HH
