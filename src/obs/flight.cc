#include "obs/flight.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "support/json.hh"

namespace jaavr::obs
{

FlightRecorder::Source::Source(std::string name, size_t capacity)
    : nameV(std::move(name)), cap(capacity == 0 ? 1 : capacity)
{
}

void
FlightRecorder::Source::record(uint64_t time, const char *kind,
                               std::string detail, uint64_t a,
                               uint64_t b)
{
    std::lock_guard<std::mutex> lock(mu);
    FlightEvent ev;
    ev.seq = nextSeq++;
    ev.time = time;
    ev.kind = kind;
    ev.detail = std::move(detail);
    ev.a = a;
    ev.b = b;
    if (events.size() == cap)
        events.pop_front();
    events.push_back(std::move(ev));
    recordedV.fetch_add(1, std::memory_order_relaxed);
}

std::vector<FlightEvent>
FlightRecorder::Source::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu);
    return {events.begin(), events.end()};
}

FlightRecorder::FlightRecorder(size_t capacity) : capacity(capacity) {}

FlightRecorder::Source *
FlightRecorder::source(const std::string &name)
{
    std::lock_guard<std::mutex> lock(sourcesMutex);
    for (auto &s : sources)
        if (s->name() == name)
            return s.get();
    sources.push_back(std::make_unique<Source>(name, capacity));
    return sources.back().get();
}

void
FlightRecorder::setDumpPath(std::string path)
{
    std::lock_guard<std::mutex> lock(sourcesMutex);
    dumpPathV = std::move(path);
}

bool
FlightRecorder::trigger(const std::string &reason)
{
    triggerCount.fetch_add(1, std::memory_order_relaxed);
    std::string path;
    {
        std::lock_guard<std::mutex> lock(sourcesMutex);
        lastReason = reason;
        path = dumpPathV;
    }
    if (path.empty())
        return true;
    return dump(path, reason);
}

bool
FlightRecorder::dump(const std::string &path,
                     const std::string &reason) const
{
    // Stable order: sources sorted by name, events by their
    // per-source sequence number — a pure function of the recorded
    // history, so deterministic workloads dump byte-identically.
    std::vector<std::pair<std::string, std::vector<FlightEvent>>> all;
    {
        std::lock_guard<std::mutex> lock(sourcesMutex);
        all.reserve(sources.size());
        for (const auto &s : sources)
            all.emplace_back(s->name(), s->snapshot());
    }
    std::sort(all.begin(), all.end(),
              [](const auto &x, const auto &y) {
                  return x.first < y.first;
              });
    std::ofstream out(path);
    if (!out)
        return false;
    uint64_t total = 0;
    for (const auto &[name, events] : all)
        total += events.size();
    JsonLine header;
    header.str("flight", "header")
        .str("reason", reason)
        .num("triggers",
             triggerCount.load(std::memory_order_relaxed))
        .num("sources", static_cast<uint64_t>(all.size()))
        .num("events", total);
    out << header.text() << "\n";
    for (const auto &[name, events] : all) {
        for (const FlightEvent &ev : events) {
            JsonLine line;
            line.str("flight", "event")
                .str("source", name)
                .num("seq", ev.seq)
                .num("t", ev.time)
                .str("kind", ev.kind)
                .str("detail", ev.detail)
                .num("a", ev.a)
                .num("b", ev.b);
            out << line.text() << "\n";
        }
    }
    return static_cast<bool>(out);
}

uint64_t
FlightRecorder::totalRecorded() const
{
    std::lock_guard<std::mutex> lock(sourcesMutex);
    uint64_t n = 0;
    for (const auto &s : sources)
        n += s->recorded();
    return n;
}

size_t
FlightRecorder::sourceCount() const
{
    std::lock_guard<std::mutex> lock(sourcesMutex);
    return sources.size();
}

std::string
FlightRecorder::statusLine() const
{
    std::ostringstream os;
    os << "flight recorder: " << sourceCount() << " sources, "
       << totalRecorded() << " events, " << triggers()
       << " triggers";
    std::lock_guard<std::mutex> lock(sourcesMutex);
    if (!lastReason.empty())
        os << " (last: " << lastReason << ")";
    if (!dumpPathV.empty())
        os << ", dump -> " << dumpPathV;
    return os.str();
}

MachineTrapFlight::MachineTrapFlight(FlightRecorder &recorder,
                                     const std::string &source)
    : recorder(recorder), src(recorder.source(source))
{
}

void
MachineTrapFlight::onTrap(const Machine &m, const Trap &trap)
{
    if (!recordAll && (trap.kind == TrapKind::DebugBreak ||
                       trap.kind == TrapKind::CycleBudget))
        return;
    src->record(m.stats().cycles, "trap", trap.describe(), trap.pc,
                trap.addr);
    if (dumpOnTrap)
        recorder.trigger("iss_trap");
}

} // namespace jaavr::obs
