/**
 * @file
 * SpanTracer: low-overhead end-to-end request tracing for the
 * service and network layers (DESIGN.md, "Request tracing & flight
 * recorder").
 *
 * The model is deliberately small:
 *  - a *span* is a named interval (begin/end in microseconds) with a
 *    trace ID (the request it belongs to), its own span ID, and an
 *    optional parent span ID — enough to reconstruct the
 *    queue-wait → drain-wait → compute causality chain of one
 *    request, or the send → retransmit → ack life of one telemetry
 *    frame. Instant events are spans with end == begin.
 *  - spans are recorded into per-producer bounded ring buffers
 *    (SpanRing): exactly one thread writes each ring, so the push
 *    path is a plain array store plus one relaxed atomic counter
 *    bump — lock-free by construction, wait-free in fact. When the
 *    ring wraps, the oldest record is overwritten and a drop counter
 *    advances; nothing ever blocks a worker.
 *  - IDs are allocated from a single atomic counter, so they are
 *    unique across threads and deterministic for deterministic
 *    workloads (no randomness, no wall clock in any ID).
 *
 * Zero-cost-when-idle contract (same as the VCD/leakage sinks): a
 * tracer that is attached but disabled — or not attached at all —
 * must not perturb the traced subsystem. Producers guard every
 * recording site with `tracer && tracer->enabled()`; the service and
 * network layers sample that flag outside their hot loops. The ISS
 * is never touched at all (the only ISS-side hook, Machine's
 * TrapSink, fires after run() has already stopped), which is what
 * lets tests pin "attached tracer = zero simulated cycles" on all
 * three backends.
 *
 * Timestamps are producer-defined: the network layer records
 * deterministic simulated microseconds, the service layer records
 * steady-clock microseconds relative to the tracer epoch (nowUs()).
 * Readers snapshot rings only at quiesce points (workers joined, or
 * the single-threaded net testbed between ticks); the atomic
 * counters alone are safe to read concurrently, which is all the
 * GDB `monitor trace status` command needs.
 *
 * Exports reuse support/json.hh: JSON-lines (one flat object per
 * span, gate-ingestible by jaavr-report) and a Chrome trace-event
 * array loadable in chrome://tracing / Perfetto.
 */

#ifndef JAAVR_OBS_TRACE_HH
#define JAAVR_OBS_TRACE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/json.hh"

namespace jaavr::obs
{

/**
 * One recorded span. POD on purpose: name/category/argument names
 * must be string literals (or otherwise outlive the tracer) so a
 * record is a fixed-size copy with no ownership.
 */
struct SpanRecord
{
    const char *name = "";    ///< e.g. "request", "send_ack"
    const char *cat = "";     ///< e.g. "service", "net"
    uint64_t traceId = 0;     ///< request identity; 0 = untraced
    uint64_t spanId = 0;      ///< unique per tracer
    uint64_t parentId = 0;    ///< enclosing span; 0 = root
    uint64_t beginUs = 0;     ///< producer time base (sim or steady)
    uint64_t endUs = 0;       ///< == beginUs for instant events
    const char *arg0Name = nullptr; ///< optional numeric argument
    uint64_t arg0 = 0;
    const char *arg1Name = nullptr;
    uint64_t arg1 = 0;

    uint64_t durUs() const { return endUs - beginUs; }
};

/**
 * Bounded single-producer span ring. push() is the producer-only
 * hot path; snapshot() is for quiesced readers and returns records
 * oldest-first. recorded()/dropped() are safe from any thread.
 */
class SpanRing
{
  public:
    SpanRing(std::string source, size_t capacity);

    /** Producer thread only. Overwrites the oldest span when full. */
    void push(const SpanRecord &r)
    {
        uint64_t w = writeIdx.load(std::memory_order_relaxed);
        slots[w & mask] = r;
        writeIdx.store(w + 1, std::memory_order_release);
    }

    const std::string &source() const { return sourceV; }
    size_t capacity() const { return slots.size(); }
    /** Total spans ever pushed (any thread). */
    uint64_t recorded() const
    {
        return writeIdx.load(std::memory_order_acquire);
    }
    /** Spans overwritten before anyone read them (any thread). */
    uint64_t dropped() const
    {
        uint64_t n = recorded();
        return n > slots.size() ? n - slots.size() : 0;
    }

    /** Oldest-first copy; call only after the producer quiesced. */
    std::vector<SpanRecord> snapshot() const;

  private:
    std::string sourceV;
    uint64_t mask;
    std::vector<SpanRecord> slots;
    std::atomic<uint64_t> writeIdx{0};
};

/**
 * The tracer: a registry of per-producer rings plus the shared ID
 * counter and time base. Create once, hand `ring()` pointers to
 * producers at attach time (ring creation takes a mutex; pushes
 * never do).
 */
class SpanTracer
{
  public:
    explicit SpanTracer(size_t ringCapacity = 4096);

    /** Recording armed? Producers must check before every record. */
    bool enabled() const
    {
        return enabledV.load(std::memory_order_relaxed);
    }
    void setEnabled(bool on)
    {
        enabledV.store(on, std::memory_order_relaxed);
    }

    /**
     * Look up or create the ring for @p source ("worker0",
     * "node:gw", ...). The pointer is stable for the tracer's
     * lifetime; each ring must keep a single pushing thread.
     */
    SpanRing *ring(const std::string &source);

    /** Fresh trace identity (for a request / telemetry message). */
    uint64_t newTraceId()
    {
        return nextId.fetch_add(1, std::memory_order_relaxed);
    }
    /** Fresh span identity. Shares the trace-ID counter space. */
    uint64_t newSpanId()
    {
        return nextId.fetch_add(1, std::memory_order_relaxed);
    }

    /** Steady-clock µs since tracer construction (service layer). */
    uint64_t nowUs() const;
    /** Convert an externally sampled steady time point to tracer µs. */
    uint64_t toUs(std::chrono::steady_clock::time_point t) const;

    size_t ringCount() const;
    uint64_t totalRecorded() const;
    uint64_t totalDropped() const;
    /** One-line status for `monitor trace status`. */
    std::string statusLine() const;

    /** (source, oldest-first records) per ring, creation order. */
    std::vector<std::pair<std::string, std::vector<SpanRecord>>>
    snapshotAll() const;

    /**
     * Append one flat JSON object per span to @p path. @p stamp is
     * the row prototype (benchLine()-style provenance fields); span
     * fields are added to a copy per row. Quiesced producers only.
     */
    bool exportJsonLines(const std::string &path,
                         const JsonLine &stamp) const;

    /**
     * Write a Chrome trace-event array (one complete "X"/"i" event
     * per span, one thread lane per ring) to @p path. Quiesced
     * producers only.
     */
    bool exportChromeTrace(const std::string &path) const;

  private:
    size_t ringCapacity;
    std::chrono::steady_clock::time_point epoch;
    std::atomic<bool> enabledV{false};
    std::atomic<uint64_t> nextId{1};
    mutable std::mutex ringsMutex;
    std::vector<std::unique_ptr<SpanRing>> rings;
};

} // namespace jaavr::obs

#endif // JAAVR_OBS_TRACE_HH
