#include "obs/trace.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace jaavr::obs
{

namespace
{

/** Round up to a power of two (min 2) so wraparound is a mask. */
size_t
roundPow2(size_t n)
{
    size_t p = 2;
    while (p < n)
        p <<= 1;
    return p;
}

} // anonymous namespace

SpanRing::SpanRing(std::string source, size_t capacity)
    : sourceV(std::move(source)),
      mask(roundPow2(capacity == 0 ? 1 : capacity) - 1),
      slots(mask + 1)
{
}

std::vector<SpanRecord>
SpanRing::snapshot() const
{
    uint64_t n = writeIdx.load(std::memory_order_acquire);
    uint64_t count = std::min<uint64_t>(n, slots.size());
    std::vector<SpanRecord> out;
    out.reserve(count);
    for (uint64_t i = n - count; i < n; i++)
        out.push_back(slots[i & mask]);
    return out;
}

SpanTracer::SpanTracer(size_t ringCapacity)
    : ringCapacity(ringCapacity),
      epoch(std::chrono::steady_clock::now())
{
}

SpanRing *
SpanTracer::ring(const std::string &source)
{
    std::lock_guard<std::mutex> lock(ringsMutex);
    for (auto &r : rings)
        if (r->source() == source)
            return r.get();
    rings.push_back(std::make_unique<SpanRing>(source, ringCapacity));
    return rings.back().get();
}

uint64_t
SpanTracer::nowUs() const
{
    return toUs(std::chrono::steady_clock::now());
}

uint64_t
SpanTracer::toUs(std::chrono::steady_clock::time_point t) const
{
    if (t <= epoch)
        return 0;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(t - epoch)
            .count());
}

size_t
SpanTracer::ringCount() const
{
    std::lock_guard<std::mutex> lock(ringsMutex);
    return rings.size();
}

uint64_t
SpanTracer::totalRecorded() const
{
    std::lock_guard<std::mutex> lock(ringsMutex);
    uint64_t n = 0;
    for (const auto &r : rings)
        n += r->recorded();
    return n;
}

uint64_t
SpanTracer::totalDropped() const
{
    std::lock_guard<std::mutex> lock(ringsMutex);
    uint64_t n = 0;
    for (const auto &r : rings)
        n += r->dropped();
    return n;
}

std::string
SpanTracer::statusLine() const
{
    std::ostringstream os;
    os << "tracer " << (enabled() ? "enabled" : "idle") << ": "
       << ringCount() << " rings, " << totalRecorded()
       << " spans recorded, " << totalDropped() << " dropped";
    return os.str();
}

std::vector<std::pair<std::string, std::vector<SpanRecord>>>
SpanTracer::snapshotAll() const
{
    std::lock_guard<std::mutex> lock(ringsMutex);
    std::vector<std::pair<std::string, std::vector<SpanRecord>>> out;
    out.reserve(rings.size());
    for (const auto &r : rings)
        out.emplace_back(r->source(), r->snapshot());
    return out;
}

bool
SpanTracer::exportJsonLines(const std::string &path,
                            const JsonLine &stamp) const
{
    std::ofstream out(path, std::ios::app);
    if (!out)
        return false;
    for (const auto &[source, records] : snapshotAll()) {
        for (const SpanRecord &r : records) {
            JsonLine line = stamp;
            line.str("record", "span")
                .str("source", source)
                .str("name", r.name)
                .str("cat", r.cat)
                .num("trace_id", r.traceId)
                .num("span_id", r.spanId)
                .num("parent_id", r.parentId)
                .num("begin_us", r.beginUs)
                .num("dur_us", r.durUs());
            if (r.arg0Name)
                line.num(r.arg0Name, r.arg0);
            if (r.arg1Name)
                line.num(r.arg1Name, r.arg1);
            out << line.text() << "\n";
        }
    }
    return static_cast<bool>(out);
}

bool
SpanTracer::exportChromeTrace(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << "[";
    bool first = true;
    auto all = snapshotAll();
    for (size_t tid = 0; tid < all.size(); tid++) {
        const auto &[source, records] = all[tid];
        out << (first ? "" : ",") << "\n"
            << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
            << "\"tid\":" << tid << ",\"args\":{\"name\":\""
            << jsonEscape(source) << "\"}}";
        first = false;
        for (const SpanRecord &r : records) {
            out << ",\n{\"name\":\"" << jsonEscape(r.name)
                << "\",\"cat\":\"" << jsonEscape(r.cat) << "\"";
            if (r.endUs > r.beginUs)
                out << ",\"ph\":\"X\",\"ts\":" << r.beginUs
                    << ",\"dur\":" << r.durUs();
            else
                out << ",\"ph\":\"i\",\"ts\":" << r.beginUs
                    << ",\"s\":\"t\"";
            out << ",\"pid\":0,\"tid\":" << tid
                << ",\"args\":{\"trace_id\":" << r.traceId
                << ",\"span_id\":" << r.spanId
                << ",\"parent_id\":" << r.parentId;
            if (r.arg0Name)
                out << ",\"" << jsonEscape(r.arg0Name)
                    << "\":" << r.arg0;
            if (r.arg1Name)
                out << ",\"" << jsonEscape(r.arg1Name)
                    << "\":" << r.arg1;
            out << "}}";
        }
    }
    out << "\n]\n";
    return static_cast<bool>(out);
}

} // namespace jaavr::obs
