/**
 * @file
 * FlightRecorder: a crash-dump-style "last N events" recorder for
 * the service workers, network nodes, and the ISS trap layer
 * (DESIGN.md, "Request tracing & flight recorder").
 *
 * Each producer owns a Source — a bounded ring of structured events
 * (logical time, kind, detail text, two numeric arguments). Events
 * are rare by design (traps, verify mismatches, re-keys,
 * quarantines, backpressure refusals), so unlike the span rings a
 * Source takes a small mutex per record; the hot paths never record
 * anything.
 *
 * Dump triggers: any producer can call trigger(reason), which
 * rewrites the configured FLIGHT_*.json in full — header line first
 * (reason of the *latest* trigger, trigger count), then every
 * retained event ordered by (source name, per-source sequence
 * number). Rewriting on every trigger makes the final file a
 * function of the event history alone, so a deterministic workload
 * (fixed seed, simulated time) produces a byte-identical dump on
 * rerun — the same convention the VCD and leakage writers pin.
 * Producers must therefore supply *logical* time (simulated µs,
 * retired cycles, per-worker op ordinals), never the wall clock.
 *
 * dump(path, reason) is the on-demand face (the GDB server's
 * `monitor flight dump`); it does not count as a trigger.
 *
 * MachineTrapFlight adapts Machine's TrapSink hook onto a Source:
 * every fault-like trap (illegal opcode, OOB access, stack
 * overflow, ...) lands in the ring with the retired-cycle timestamp
 * and optionally fires a dump. Control-flow traps (debug breaks,
 * cycle-budget slices) are filtered out by default — a GDB continue
 * loop raises one per slice and they are not anomalies.
 */

#ifndef JAAVR_OBS_FLIGHT_HH
#define JAAVR_OBS_FLIGHT_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "avr/machine.hh"

namespace jaavr::obs
{

/** One retained event. Times are logical, never wall-clock. */
struct FlightEvent
{
    uint64_t seq = 0;    ///< per-source record ordinal (1-based)
    uint64_t time = 0;   ///< producer logical time (sim µs, cycles…)
    const char *kind = ""; ///< literal: "trap", "rekey", ...
    std::string detail;  ///< formatted description
    uint64_t a = 0;      ///< numeric arguments (kind-specific)
    uint64_t b = 0;
};

class FlightRecorder
{
  public:
    /** Per-producer bounded event ring (last @p capacity events). */
    class Source
    {
      public:
        Source(std::string name, size_t capacity);

        void record(uint64_t time, const char *kind,
                    std::string detail, uint64_t a = 0,
                    uint64_t b = 0);

        const std::string &name() const { return nameV; }
        /** Total events ever recorded (any thread). */
        uint64_t recorded() const
        {
            return recordedV.load(std::memory_order_relaxed);
        }
        std::vector<FlightEvent> snapshot() const;

      private:
        std::string nameV;
        size_t cap;
        mutable std::mutex mu;
        uint64_t nextSeq = 1;
        std::deque<FlightEvent> events;
        std::atomic<uint64_t> recordedV{0};
    };

    explicit FlightRecorder(size_t capacity = 64);

    /** Look up or create a source; pointer stable for our lifetime. */
    Source *source(const std::string &name);

    /** Where trigger() dumps to; empty disables trigger dumps. */
    void setDumpPath(std::string path);
    const std::string &dumpPath() const { return dumpPathV; }

    /**
     * A dump-worthy anomaly happened: count it and, if a dump path
     * is set, rewrite the dump file. Returns false only on I/O
     * failure.
     */
    bool trigger(const std::string &reason);

    /** On-demand dump (GDB monitor); not counted as a trigger. */
    bool dump(const std::string &path, const std::string &reason) const;

    uint64_t triggers() const
    {
        return triggerCount.load(std::memory_order_relaxed);
    }
    uint64_t totalRecorded() const;
    size_t sourceCount() const;
    /** One-line status for `monitor flight`. */
    std::string statusLine() const;

  private:
    size_t capacity;
    std::string dumpPathV;
    std::string lastReason;
    std::atomic<uint64_t> triggerCount{0};
    mutable std::mutex sourcesMutex;
    std::vector<std::unique_ptr<Source>> sources;
};

/**
 * TrapSink adapter: records Machine traps into a flight source and
 * optionally fires a recorder trigger per fault-like trap.
 */
class MachineTrapFlight final : public TrapSink
{
  public:
    MachineTrapFlight(FlightRecorder &recorder,
                      const std::string &source);

    /** Also record DebugBreak/CycleBudget stops (default: skip). */
    void setRecordAll(bool v) { recordAll = v; }
    /** Fire recorder.trigger("iss_trap") per recorded trap. */
    void setDumpOnTrap(bool v) { dumpOnTrap = v; }

    void onTrap(const Machine &m, const Trap &trap) override;

  private:
    FlightRecorder &recorder;
    FlightRecorder::Source *src;
    bool recordAll = false;
    bool dumpOnTrap = true;
};

} // namespace jaavr::obs

#endif // JAAVR_OBS_FLIGHT_HH
