/**
 * @file
 * A two-pass AVR assembler.
 *
 * Accepts the classic AVR syntax used throughout the paper's
 * listings (Algorithms 1 and 2):
 *
 *     label:  ldd  r24, Z+3     ; comment
 *             ldi  r16, lo8(CONST)
 *             rjmp label
 *             .org 0x10
 *             .equ FRAME = 0x0200
 *             .dw  0x1234, label
 *
 * Mnemonic aliases (lsl/rol/tst/clr/ser, breq/brne/brcc/...,
 * sec/clc/sei/..., ld rd, Y) are resolved to their base encodings.
 * All operand-range violations (register classes, displacement and
 * branch ranges) are diagnosed with the source line via fatal().
 */

#ifndef JAAVR_AVRASM_ASSEMBLER_HH
#define JAAVR_AVRASM_ASSEMBLER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace jaavr
{

/** An assembled program. */
struct Program
{
    std::vector<uint16_t> words;           ///< flash image from word 0
    std::map<std::string, uint32_t> labels; ///< label -> word address

    /** Word address of @p label; fatal() if undefined. */
    uint32_t label(const std::string &name) const;

    /** Number of flash bytes (2 * words, the paper's "ROM bytes"). */
    size_t romBytes() const { return words.size() * 2; }
};

/** Assemble @p source; diagnostics name @p unit. */
Program assemble(const std::string &source,
                 const std::string &unit = "<asm>");

} // namespace jaavr

#endif // JAAVR_AVRASM_ASSEMBLER_HH
