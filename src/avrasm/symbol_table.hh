/**
 * @file
 * Symbol table aggregated from assembled programs: maps flash word
 * addresses back to label names so the ISS profiler can attribute
 * cycles to routines instead of raw addresses.
 *
 * A Program's label map is local to its own word 0; harnesses load
 * several programs at different flash offsets, so addProgram()
 * rebases every label by the load address and prefixes it with the
 * program name ("opf_inv.inv_loop"). The program name itself becomes
 * the symbol of the load address (the routine's entry point).
 */

#ifndef JAAVR_AVRASM_SYMBOL_TABLE_HH
#define JAAVR_AVRASM_SYMBOL_TABLE_HH

#include <cstdint>
#include <map>
#include <string>

#include "avrasm/assembler.hh"

namespace jaavr
{

class SymbolTable
{
  public:
    /** Define @p name at flash word @p word_addr (last write wins). */
    void add(const std::string &name, uint32_t word_addr);

    /**
     * Import @p prog loaded at @p load_base: @p name labels the entry
     * word, and every internal label is rebased and imported as
     * "name.label" (unless it sits on the entry word itself).
     */
    void addProgram(const std::string &name, const Program &prog,
                    uint32_t load_base);

    /** Symbol defined exactly at @p word_addr, or nullptr. */
    const std::string *exact(uint32_t word_addr) const;

    /**
     * Human-readable location of @p word_addr: the exact symbol, the
     * nearest symbol at a lower address as "name+0xk", or a bare hex
     * address when nothing is defined below it.
     */
    std::string resolve(uint32_t word_addr) const;

    bool empty() const { return byAddr.empty(); }
    size_t size() const { return byAddr.size(); }

    const std::map<uint32_t, std::string> &entries() const
    {
        return byAddr;
    }

  private:
    std::map<uint32_t, std::string> byAddr;
};

} // namespace jaavr

#endif // JAAVR_AVRASM_SYMBOL_TABLE_HH
