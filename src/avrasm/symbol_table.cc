#include "avrasm/symbol_table.hh"

#include "support/logging.hh"

namespace jaavr
{

void
SymbolTable::add(const std::string &name, uint32_t word_addr)
{
    byAddr[word_addr] = name;
}

void
SymbolTable::addProgram(const std::string &name, const Program &prog,
                        uint32_t load_base)
{
    add(name, load_base);
    for (const auto &[label, addr] : prog.labels) {
        if (addr == 0)
            continue;  // the entry word is already named @p name
        add(name + "." + label, load_base + addr);
    }
}

const std::string *
SymbolTable::exact(uint32_t word_addr) const
{
    auto it = byAddr.find(word_addr);
    return it == byAddr.end() ? nullptr : &it->second;
}

std::string
SymbolTable::resolve(uint32_t word_addr) const
{
    auto it = byAddr.upper_bound(word_addr);
    if (it == byAddr.begin())
        return csprintf("0x%04x", word_addr);
    --it;
    if (it->first == word_addr)
        return it->second;
    return csprintf("%s+0x%x", it->second.c_str(),
                    word_addr - it->first);
}

} // namespace jaavr
