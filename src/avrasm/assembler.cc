#include "avrasm/assembler.hh"

#include <algorithm>
#include <cctype>
#include <optional>
#include <sstream>

#include "support/logging.hh"

namespace jaavr
{

uint32_t
Program::label(const std::string &name) const
{
    auto it = labels.find(name);
    if (it == labels.end())
        fatal("Program::label: undefined label '%s'", name.c_str());
    return it->second;
}

namespace
{

/** Parsing context for diagnostics. */
struct Ctx
{
    const std::string *unit;
    int line;
};

[[noreturn]] void
err(const Ctx &c, const std::string &msg)
{
    fatal("%s:%d: %s", c.unit->c_str(), c.line, msg.c_str());
}

std::string
lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char ch) { return std::tolower(ch); });
    return s;
}

std::string
trim(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

/** Minimal expression evaluator: + - * ( ) lo8() hi8() numbers syms. */
class ExprEval
{
  public:
    ExprEval(const std::string &text, const std::map<std::string, int64_t> &syms,
             const Ctx &ctx)
        : s(text), symbols(syms), c(ctx)
    {}

    int64_t
    eval()
    {
        int64_t v = sum();
        skipWs();
        if (pos != s.size())
            err(c, "trailing characters in expression '" + s + "'");
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos])))
            pos++;
    }

    int64_t
    sum()
    {
        int64_t v = product();
        for (;;) {
            skipWs();
            if (pos < s.size() && (s[pos] == '+' || s[pos] == '-')) {
                char op = s[pos++];
                int64_t r = product();
                v = op == '+' ? v + r : v - r;
            } else {
                return v;
            }
        }
    }

    int64_t
    product()
    {
        int64_t v = unary();
        for (;;) {
            skipWs();
            if (pos < s.size() && s[pos] == '*') {
                pos++;
                v *= unary();
            } else {
                return v;
            }
        }
    }

    int64_t
    unary()
    {
        skipWs();
        if (pos < s.size() && s[pos] == '-') {
            pos++;
            return -unary();
        }
        return atom();
    }

    int64_t
    atom()
    {
        skipWs();
        if (pos >= s.size())
            err(c, "unexpected end of expression '" + s + "'");
        if (s[pos] == '(') {
            pos++;
            int64_t v = sum();
            expect(')');
            return v;
        }
        if (std::isdigit(static_cast<unsigned char>(s[pos])))
            return number();
        // Identifier: symbol or lo8/hi8 function.
        size_t start = pos;
        while (pos < s.size() &&
               (std::isalnum(static_cast<unsigned char>(s[pos])) ||
                s[pos] == '_'))
            pos++;
        std::string name = s.substr(start, pos - start);
        std::string lname = lower(name);
        skipWs();
        if ((lname == "lo8" || lname == "hi8") && pos < s.size() &&
            s[pos] == '(') {
            pos++;
            int64_t v = sum();
            expect(')');
            return lname == "lo8" ? (v & 0xff) : ((v >> 8) & 0xff);
        }
        auto it = symbols.find(name);
        if (it == symbols.end())
            err(c, "undefined symbol '" + name + "'");
        return it->second;
    }

    int64_t
    number()
    {
        int base = 10;
        if (s[pos] == '0' && pos + 1 < s.size() &&
            (s[pos + 1] == 'x' || s[pos + 1] == 'X')) {
            base = 16;
            pos += 2;
        } else if (s[pos] == '0' && pos + 1 < s.size() &&
                   (s[pos + 1] == 'b' || s[pos + 1] == 'B')) {
            base = 2;
            pos += 2;
        }
        size_t start = pos;
        while (pos < s.size() &&
               std::isalnum(static_cast<unsigned char>(s[pos])))
            pos++;
        std::string digits = s.substr(start, pos - start);
        if (digits.empty())
            err(c, "malformed number in '" + s + "'");
        int64_t v = 0;
        for (char ch : digits) {
            int d = std::isdigit(static_cast<unsigned char>(ch))
                        ? ch - '0'
                        : std::tolower(static_cast<unsigned char>(ch)) - 'a' +
                              10;
            if (d < 0 || d >= base)
                err(c, "bad digit in number '" + digits + "'");
            v = v * base + d;
        }
        return v;
    }

    void
    expect(char ch)
    {
        skipWs();
        if (pos >= s.size() || s[pos] != ch)
            err(c, std::string("expected '") + ch + "' in '" + s + "'");
        pos++;
    }

    const std::string &s;
    const std::map<std::string, int64_t> &symbols;
    const Ctx &c;
    size_t pos = 0;
};

/** One parsed source statement. */
struct Stmt
{
    int line;
    std::string mnemonic;               // lower-case
    std::vector<std::string> operands;  // raw text, trimmed
    uint32_t addr = 0;                  // word address (pass 1)
    unsigned words = 1;
};

/** Split on the first comma not inside parentheses. */
std::vector<std::string>
splitOperands(const std::string &text)
{
    std::vector<std::string> out;
    int depth = 0;
    std::string cur;
    for (char ch : text) {
        if (ch == '(')
            depth++;
        else if (ch == ')')
            depth--;
        if (ch == ',' && depth == 0) {
            out.push_back(trim(cur));
            cur.clear();
        } else {
            cur.push_back(ch);
        }
    }
    std::string last = trim(cur);
    if (!last.empty() || !out.empty())
        out.push_back(last);
    return out;
}

/** Parse "rN" into a register number. */
std::optional<unsigned>
parseReg(const std::string &t)
{
    std::string s = lower(trim(t));
    if (s.size() < 2 || s[0] != 'r')
        return std::nullopt;
    unsigned v = 0;
    for (size_t i = 1; i < s.size(); i++) {
        if (!std::isdigit(static_cast<unsigned char>(s[i])))
            return std::nullopt;
        v = v * 10 + (s[i] - '0');
    }
    if (v > 31)
        return std::nullopt;
    return v;
}

struct Encoder
{
    const Ctx &c;
    std::vector<uint16_t> out;

    void emit(uint16_t w) { out.push_back(w); }

    unsigned
    reg(const std::string &t)
    {
        auto r = parseReg(t);
        if (!r)
            err(c, "expected register, got '" + t + "'");
        return *r;
    }

    unsigned
    regHigh(const std::string &t)
    {
        unsigned r = reg(t);
        if (r < 16)
            err(c, "register must be r16..r31, got '" + t + "'");
        return r;
    }

    /** Two-register encoding 'oooo oord dddd rrrr'. */
    void
    rr(uint16_t opcode, unsigned d, unsigned r)
    {
        emit(opcode | ((r & 0x10) << 5) | (d << 4) | (r & 0x0f));
    }

    /** Immediate encoding 'oooo KKKK dddd KKKK' (d in 16..31). */
    void
    imm8(uint16_t opcode, unsigned d, int64_t k)
    {
        if (k < -128 || k > 255)
            err(c, "immediate out of range");
        uint16_t kk = static_cast<uint8_t>(k);
        emit(opcode | ((kk & 0xf0) << 4) | ((d - 16) << 4) | (kk & 0x0f));
    }
};

} // anonymous namespace

Program
assemble(const std::string &source, const std::string &unit)
{
    // --- Tokenize into statements, collecting labels and .equ. -----
    std::vector<Stmt> stmts;
    std::map<std::string, int64_t> symbols;
    std::map<std::string, uint32_t> labels;
    std::vector<std::pair<std::string, int>> pending_labels;

    Ctx ctx{&unit, 0};

    std::istringstream is(source);
    std::string raw;
    int lineno = 0;
    uint32_t addr = 0;

    // Pass 1: sizes and label addresses.
    std::vector<std::string> lines;
    while (std::getline(is, raw))
        lines.push_back(raw);

    auto strip = [](std::string l) {
        size_t sc = l.find(';');
        if (sc != std::string::npos)
            l = l.substr(0, sc);
        size_t ds = l.find("//");
        if (ds != std::string::npos)
            l = l.substr(0, ds);
        return trim(l);
    };

    auto is_two_word_mnem = [](const std::string &m) {
        return m == "lds" || m == "sts" || m == "jmp" || m == "call";
    };

    for (const std::string &raw_line : lines) {
        lineno++;
        ctx.line = lineno;
        std::string l = strip(raw_line);
        // Labels (possibly several per line).
        for (;;) {
            size_t colon = l.find(':');
            if (colon == std::string::npos)
                break;
            std::string name = trim(l.substr(0, colon));
            if (name.empty() ||
                !std::all_of(name.begin(), name.end(), [](unsigned char ch) {
                    return std::isalnum(ch) || ch == '_';
                }))
                break;  // not a label (e.g. inside an operand)
            if (labels.count(name))
                err(ctx, "duplicate label '" + name + "'");
            labels[name] = addr;
            l = trim(l.substr(colon + 1));
        }
        if (l.empty())
            continue;

        // Split mnemonic/operands.
        size_t sp = l.find_first_of(" \t");
        std::string mnem = lower(sp == std::string::npos ? l : l.substr(0, sp));
        std::string rest = sp == std::string::npos ? "" : trim(l.substr(sp));

        if (mnem == ".equ") {
            size_t eq = rest.find('=');
            if (eq == std::string::npos)
                err(ctx, ".equ requires NAME = expr");
            std::string name = trim(rest.substr(0, eq));
            std::string expr = trim(rest.substr(eq + 1));
            symbols[name] = ExprEval(expr, symbols, ctx).eval();
            continue;
        }
        if (mnem == ".org") {
            int64_t v = ExprEval(rest, symbols, ctx).eval();
            if (v < 0 || v > 0xffff)
                err(ctx, ".org out of range");
            addr = static_cast<uint32_t>(v);
            continue;
        }

        Stmt st;
        st.line = lineno;
        st.mnemonic = mnem;
        st.operands = splitOperands(rest);
        st.addr = addr;
        if (mnem == ".dw")
            st.words = st.operands.size();
        else
            st.words = is_two_word_mnem(mnem) ? 2 : 1;
        addr += st.words;
        stmts.push_back(st);
    }

    // Labels become symbols (word addresses).
    for (auto &[name, a] : labels)
        symbols[name] = a;

    // --- Pass 2: encode. --------------------------------------------
    uint32_t max_addr = 0;
    for (const Stmt &st : stmts)
        max_addr = std::max(max_addr, st.addr + st.words);
    std::vector<uint16_t> image(max_addr, 0x0000);

    for (const Stmt &st : stmts) {
        ctx.line = st.line;
        Encoder e{ctx, {}};
        const auto &ops = st.operands;
        const std::string &m = st.mnemonic;

        auto nops = [&](size_t n) {
            if (ops.size() != n ||
                (n > 0 && ops.back().empty()))
                err(ctx, "wrong operand count for '" + m + "'");
        };
        auto expr = [&](const std::string &t) {
            return ExprEval(t, symbols, ctx).eval();
        };
        auto branch_off = [&](const std::string &t, int range_bits) {
            int64_t target = expr(t);
            int64_t off = target - (static_cast<int64_t>(st.addr) + 1);
            int64_t lim = 1 << (range_bits - 1);
            if (off < -lim || off >= lim)
                err(ctx, "branch target out of range");
            return static_cast<uint16_t>(off & ((1 << range_bits) - 1));
        };

        // Register-register group.
        static const std::map<std::string, uint16_t> rr_ops = {
            {"add", 0x0c00}, {"adc", 0x1c00}, {"sub", 0x1800},
            {"sbc", 0x0800}, {"and", 0x2000}, {"or", 0x2800},
            {"eor", 0x2400}, {"mov", 0x2c00}, {"cp", 0x1400},
            {"cpc", 0x0400}, {"cpse", 0x1000}, {"mul", 0x9c00},
        };
        static const std::map<std::string, uint16_t> imm_ops = {
            {"subi", 0x5000}, {"sbci", 0x4000}, {"andi", 0x7000},
            {"ori", 0x6000}, {"cpi", 0x3000}, {"ldi", 0xe000},
        };
        static const std::map<std::string, uint16_t> one_ops = {
            {"com", 0x9400}, {"neg", 0x9401}, {"swap", 0x9402},
            {"inc", 0x9403}, {"asr", 0x9405}, {"lsr", 0x9406},
            {"ror", 0x9407}, {"dec", 0x940a},
        };
        // SREG set/clear aliases: se?/cl? with bit index.
        static const std::map<std::string, int> sreg_bits = {
            {"c", 0}, {"z", 1}, {"n", 2}, {"v", 3},
            {"s", 4}, {"h", 5}, {"t", 6}, {"i", 7},
        };
        static const std::map<std::string, int> branch_alias = {
            // BRBS aliases (flag set).
            {"brcs", 0x00}, {"brlo", 0x00}, {"breq", 0x01},
            {"brmi", 0x02}, {"brvs", 0x03}, {"brlt", 0x04},
            {"brhs", 0x05}, {"brts", 0x06}, {"brie", 0x07},
            // BRBC aliases (flag clear) -- offset by 0x10.
            {"brcc", 0x10}, {"brsh", 0x10}, {"brne", 0x11},
            {"brpl", 0x12}, {"brvc", 0x13}, {"brge", 0x14},
            {"brhc", 0x15}, {"brtc", 0x16}, {"brid", 0x17},
        };

        if (m == ".dw") {
            for (const std::string &t : ops) {
                int64_t v = expr(t);
                if (v < 0 || v > 0xffff)
                    err(ctx, ".dw value out of range");
                e.emit(static_cast<uint16_t>(v));
            }
        } else if (auto it = rr_ops.find(m); it != rr_ops.end()) {
            nops(2);
            e.rr(it->second, e.reg(ops[0]), e.reg(ops[1]));
        } else if (m == "lsl" || m == "rol" || m == "tst" || m == "clr") {
            nops(1);
            unsigned d = e.reg(ops[0]);
            uint16_t base = m == "lsl" ? 0x0c00
                          : m == "rol" ? 0x1c00
                          : m == "tst" ? 0x2000 : 0x2400;
            e.rr(base, d, d);
        } else if (m == "ser") {
            nops(1);
            e.imm8(0xe000, e.regHigh(ops[0]), 0xff);
        } else if (auto it = imm_ops.find(m); it != imm_ops.end()) {
            nops(2);
            e.imm8(it->second, e.regHigh(ops[0]), expr(ops[1]));
        } else if (auto it = one_ops.find(m); it != one_ops.end()) {
            nops(1);
            e.emit(it->second | (e.reg(ops[0]) << 4));
        } else if (m == "movw") {
            nops(2);
            unsigned d = e.reg(ops[0]), r = e.reg(ops[1]);
            if (d % 2 || r % 2)
                err(ctx, "movw requires even registers");
            e.emit(0x0100 | ((d / 2) << 4) | (r / 2));
        } else if (m == "muls") {
            nops(2);
            unsigned d = e.regHigh(ops[0]), r = e.regHigh(ops[1]);
            e.emit(0x0200 | ((d - 16) << 4) | (r - 16));
        } else if (m == "mulsu" || m == "fmul" || m == "fmuls" ||
                   m == "fmulsu") {
            nops(2);
            unsigned d = e.reg(ops[0]), r = e.reg(ops[1]);
            if (d < 16 || d > 23 || r < 16 || r > 23)
                err(ctx, m + " requires r16..r23");
            uint16_t sel = m == "mulsu" ? 0x0000
                         : m == "fmul" ? 0x0008
                         : m == "fmuls" ? 0x0080 : 0x0088;
            e.emit(0x0300 | sel | ((d - 16) << 4) | (r - 16));
        } else if (m == "adiw" || m == "sbiw") {
            nops(2);
            unsigned d = e.reg(ops[0]);
            if (d != 24 && d != 26 && d != 28 && d != 30)
                err(ctx, m + " requires r24/r26/r28/r30");
            int64_t k = expr(ops[1]);
            if (k < 0 || k > 63)
                err(ctx, m + " immediate must be 0..63");
            uint16_t base = m == "adiw" ? 0x9600 : 0x9700;
            e.emit(base | ((static_cast<uint16_t>(k) & 0x30) << 2) |
                   (((d - 24) / 2) << 4) | (k & 0x0f));
        } else if (m == "bset" || m == "bclr") {
            nops(1);
            int64_t b = expr(ops[0]);
            if (b < 0 || b > 7)
                err(ctx, "bit out of range");
            e.emit((m == "bset" ? 0x9408 : 0x9488) | (b << 4));
        } else if (m.size() == 3 && (m[0] == 's' || m[0] == 'c') &&
                   m[1] == 'e' + (m[0] == 'c' ? 'l' - 'e' : 0) &&
                   sreg_bits.count(m.substr(2))) {
            // se?/cl? one-letter flag aliases (sec, clz, set, cli...).
            nops(0);
            int b = sreg_bits.at(m.substr(2));
            e.emit((m[0] == 's' ? 0x9408 : 0x9488) | (b << 4));
        } else if (m == "bld" || m == "bst" || m == "sbrc" || m == "sbrs") {
            nops(2);
            unsigned d = e.reg(ops[0]);
            int64_t b = expr(ops[1]);
            if (b < 0 || b > 7)
                err(ctx, "bit out of range");
            uint16_t base = m == "bld" ? 0xf800
                          : m == "bst" ? 0xfa00
                          : m == "sbrc" ? 0xfc00 : 0xfe00;
            e.emit(base | (d << 4) | b);
        } else if (m == "sbi" || m == "cbi" || m == "sbic" || m == "sbis") {
            nops(2);
            int64_t a = expr(ops[0]);
            int64_t b = expr(ops[1]);
            if (a < 0 || a > 31 || b < 0 || b > 7)
                err(ctx, "sbi/cbi operand out of range");
            uint16_t base = m == "cbi" ? 0x9800
                          : m == "sbic" ? 0x9900
                          : m == "sbi" ? 0x9a00 : 0x9b00;
            e.emit(base | (a << 3) | b);
        } else if (m == "in" || m == "out") {
            nops(2);
            unsigned d;
            int64_t a;
            if (m == "in") {
                d = e.reg(ops[0]);
                a = expr(ops[1]);
            } else {
                a = expr(ops[0]);
                d = e.reg(ops[1]);
            }
            if (a < 0 || a > 63)
                err(ctx, "I/O address out of range");
            uint16_t base = m == "in" ? 0xb000 : 0xb800;
            e.emit(base | ((a & 0x30) << 5) | (d << 4) | (a & 0x0f));
        } else if (m == "ld" || m == "st") {
            nops(2);
            bool store = m == "st";
            const std::string &rt = store ? ops[1] : ops[0];
            std::string pt = lower(store ? ops[0] : ops[1]);
            unsigned d = e.reg(rt);
            uint16_t w;
            if (pt == "x")
                w = 0x900c;
            else if (pt == "x+")
                w = 0x900d;
            else if (pt == "-x")
                w = 0x900e;
            else if (pt == "y")
                w = 0x8008;  // ldd Y+0
            else if (pt == "y+")
                w = 0x9009;
            else if (pt == "-y")
                w = 0x900a;
            else if (pt == "z")
                w = 0x8000;  // ldd Z+0
            else if (pt == "z+")
                w = 0x9001;
            else if (pt == "-z")
                w = 0x9002;
            else
                err(ctx, "bad pointer operand '" + pt + "'");
            if (store)
                w |= 0x0200;
            e.emit(w | (d << 4));
        } else if (m == "ldd" || m == "std") {
            nops(2);
            bool store = m == "std";
            const std::string &rt = store ? ops[1] : ops[0];
            std::string pt = lower(trim(store ? ops[0] : ops[1]));
            unsigned d = e.reg(rt);
            if (pt.size() < 3 || (pt[0] != 'y' && pt[0] != 'z') ||
                pt[1] != '+')
                err(ctx, "ldd/std needs Y+q or Z+q");
            Ctx c2 = ctx;
            int64_t q = ExprEval(pt.substr(2), symbols, c2).eval();
            if (q < 0 || q > 63)
                err(ctx, "displacement must be 0..63");
            uint16_t w = 0x8000 | (store ? 0x0200 : 0) |
                         (pt[0] == 'y' ? 0x0008 : 0);
            w |= ((q & 0x20) << 8) | ((q & 0x18) << 7) | (q & 0x07);
            e.emit(w | (d << 4));
        } else if (m == "lds" || m == "sts") {
            nops(2);
            unsigned d;
            int64_t k;
            if (m == "lds") {
                d = e.reg(ops[0]);
                k = expr(ops[1]);
            } else {
                k = expr(ops[0]);
                d = e.reg(ops[1]);
            }
            if (k < 0 || k > 0xffff)
                err(ctx, "lds/sts address out of range");
            e.emit((m == "lds" ? 0x9000 : 0x9200) | (d << 4));
            e.emit(static_cast<uint16_t>(k));
        } else if (m == "push" || m == "pop") {
            nops(1);
            unsigned d = e.reg(ops[0]);
            e.emit((m == "push" ? 0x920f : 0x900f) | (d << 4));
        } else if (m == "lpm") {
            if (ops.empty()) {
                e.emit(0x95c8);
            } else {
                nops(2);
                unsigned d = e.reg(ops[0]);
                std::string pt = lower(ops[1]);
                if (pt == "z")
                    e.emit(0x9004 | (d << 4));
                else if (pt == "z+")
                    e.emit(0x9005 | (d << 4));
                else
                    err(ctx, "lpm needs Z or Z+");
            }
        } else if (m == "rjmp" || m == "rcall") {
            nops(1);
            uint16_t off = branch_off(ops[0], 12);
            e.emit((m == "rjmp" ? 0xc000 : 0xd000) | off);
        } else if (m == "jmp" || m == "call") {
            nops(1);
            int64_t k = expr(ops[0]);
            if (k < 0 || k > 0x3fffff)
                err(ctx, "jmp/call target out of range");
            uint16_t hi = (m == "jmp" ? 0x940c : 0x940e) |
                          (((k >> 17) & 0x1f) << 4) | ((k >> 16) & 1);
            e.emit(hi);
            e.emit(static_cast<uint16_t>(k));
        } else if (m == "ret") {
            nops(0);
            e.emit(0x9508);
        } else if (m == "reti") {
            nops(0);
            e.emit(0x9518);
        } else if (m == "ijmp") {
            nops(0);
            e.emit(0x9409);
        } else if (m == "icall") {
            nops(0);
            e.emit(0x9509);
        } else if (m == "brbs" || m == "brbc") {
            nops(2);
            int64_t b = expr(ops[0]);
            if (b < 0 || b > 7)
                err(ctx, "bit out of range");
            uint16_t off = branch_off(ops[1], 7);
            e.emit((m == "brbs" ? 0xf000 : 0xf400) | (off << 3) | b);
        } else if (auto it = branch_alias.find(m);
                   it != branch_alias.end()) {
            nops(1);
            int sel = it->second;
            uint16_t off = branch_off(ops[0], 7);
            e.emit((sel & 0x10 ? 0xf400 : 0xf000) | (off << 3) |
                   (sel & 0x07));
        } else if (m == "nop") {
            nops(0);
            e.emit(0x0000);
        } else if (m == "sleep") {
            nops(0);
            e.emit(0x9588);
        } else if (m == "wdr") {
            nops(0);
            e.emit(0x95a8);
        } else if (m == "break") {
            nops(0);
            e.emit(0x9598);
        } else {
            err(ctx, "unknown mnemonic '" + m + "'");
        }

        if (e.out.size() != st.words)
            err(ctx, "internal: size mismatch for '" + m + "'");
        for (size_t i = 0; i < e.out.size(); i++)
            image[st.addr + i] = e.out[i];
    }

    Program prog;
    prog.words = std::move(image);
    prog.labels = std::move(labels);
    return prog;
}

} // namespace jaavr
