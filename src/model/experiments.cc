#include "model/experiments.hh"

#include "avrgen/opf_harness.hh"
#include "curves/standard_curves.hh"
#include "support/logging.hh"

namespace jaavr
{

const char *
curveName(CurveId id)
{
    switch (id) {
      case CurveId::Secp160r1: return "secp160r1";
      case CurveId::WeierstrassOpf: return "Weierstrass";
      case CurveId::EdwardsOpf: return "Edwards";
      case CurveId::MontgomeryOpf: return "Montgomery";
      case CurveId::GlvOpf: return "GLV";
    }
    return "?";
}

const char *
methodName(PmMethod m)
{
    switch (m) {
      case PmMethod::Naf: return "NAF";
      case PmMethod::Daaa: return "DAAA";
      case PmMethod::CozLadder: return "Mon";
      case PmMethod::XzLadder: return "Mon";
      case PmMethod::GlvJsf: return "End, JSF";
      case PmMethod::Binary: return "Binary";
    }
    return "?";
}

namespace
{

/** Field, costs, and scalar-bound selection per curve. */
struct CurveEnv
{
    const PrimeField *field;
    FieldCycleCosts costs;
    BigUInt scalarBound;  ///< scalars drawn from [1, bound)
};

CurveEnv
curveEnv(CurveId curve, CpuMode mode)
{
    CurveEnv env;
    switch (curve) {
      case CurveId::Secp160r1:
        env.field = &secp160r1Field();
        env.costs = secp160r1FieldCosts(mode);
        env.scalarBound = secp160r1Generator().order;
        break;
      case CurveId::WeierstrassOpf:
      case CurveId::EdwardsOpf:
      case CurveId::MontgomeryOpf:
        env.field = &paperOpfField();
        env.costs = opfFieldCosts(paperOpfPrime(), mode);
        // Orders unknown for these constructed curves: full-width
        // scalars, like an ECDH secret.
        env.scalarBound = BigUInt::powerOfTwo(160);
        break;
      case CurveId::GlvOpf:
        env.field = &glvOpfField();
        env.costs = opfFieldCosts(glvOpfPrimeUsed(), mode);
        env.scalarBound = glvOpfCurve().order();
        break;
    }
    return env;
}

/**
 * Resolve the curve objects and base point eagerly and return a
 * closure performing only the scalar multiplication. Keeping the
 * lazily-initialized curve singletons (base-point lifting, generator
 * validation) out of the measured region matters: their first-use
 * cost would otherwise contaminate the first measurement.
 */
std::function<void(const BigUInt &)>
prepareRun(CurveId curve, PmMethod method)
{
    switch (curve) {
      case CurveId::Secp160r1: {
        const WeierstrassCurve &c = secp160r1Curve();
        AffinePoint g = secp160r1Generator().g;
        switch (method) {
          case PmMethod::Naf:
            return [&c, g](const BigUInt &k) { c.mulNaf(k, g); };
          case PmMethod::Daaa:
            return [&c, g](const BigUInt &k) { c.mulDaaa(k, g); };
          case PmMethod::CozLadder:
            return [&c, g](const BigUInt &k) { c.mulLadder(k, g); };
          case PmMethod::Binary:
            return [&c, g](const BigUInt &k) { c.mulBinary(k, g); };
          default: break;
        }
        break;
      }
      case CurveId::WeierstrassOpf: {
        const WeierstrassCurve &c = weierstrassOpfCurve();
        AffinePoint g = weierstrassOpfBasePoint();
        switch (method) {
          case PmMethod::Naf:
            return [&c, g](const BigUInt &k) { c.mulNaf(k, g); };
          case PmMethod::Daaa:
            return [&c, g](const BigUInt &k) { c.mulDaaa(k, g); };
          case PmMethod::CozLadder:
            return [&c, g](const BigUInt &k) { c.mulLadder(k, g); };
          case PmMethod::Binary:
            return [&c, g](const BigUInt &k) { c.mulBinary(k, g); };
          default: break;
        }
        break;
      }
      case CurveId::EdwardsOpf: {
        const EdwardsCurve &c = edwardsOpfCurve();
        AffinePoint g = edwardsOpfBasePoint();
        switch (method) {
          case PmMethod::Naf:
            return [&c, g](const BigUInt &k) { c.mulNaf(k, g); };
          case PmMethod::Daaa:
            return [&c, g](const BigUInt &k) { c.mulDaaa(k, g); };
          case PmMethod::Binary:
            return [&c, g](const BigUInt &k) { c.mulBinary(k, g); };
          default: break;
        }
        break;
      }
      case CurveId::MontgomeryOpf: {
        const MontgomeryCurve &c = montgomeryOpfCurve();
        BigUInt x = montgomeryOpfBasePoint().x;
        if (method == PmMethod::XzLadder)
            return [&c, x](const BigUInt &k) { c.ladder(k, x); };
        break;
      }
      case CurveId::GlvOpf: {
        const GlvCurve &c = glvOpfCurve();
        AffinePoint g = c.generator();
        switch (method) {
          case PmMethod::Naf:
            return [&c, g](const BigUInt &k) { c.mulNaf(k, g); };
          case PmMethod::Daaa:
            return [&c, g](const BigUInt &k) { c.mulDaaa(k, g); };
          case PmMethod::CozLadder:
            return [&c, g](const BigUInt &k) { c.mulLadder(k, g); };
          case PmMethod::GlvJsf:
            return [&c, g](const BigUInt &k) { c.mulGlvJsf(k, g); };
          case PmMethod::Binary:
            return [&c, g](const BigUInt &k) { c.mulBinary(k, g); };
          default: break;
        }
        break;
      }
    }
    panic("measurePointMult: method %s not available on curve %s",
          methodName(method), curveName(curve));
}

} // anonymous namespace

PointMultMeasurement
measurePointMult(CurveId curve, PmMethod method, CpuMode mode, Rng &rng)
{
    return measurePointMultAvg(curve, method, mode, rng, 1);
}

PointMultMeasurement
measurePointMultAvg(CurveId curve, PmMethod method, CpuMode mode,
                    Rng &rng, int samples)
{
    CurveEnv env = curveEnv(curve, mode);
    CycleExecutor exec(env.costs);
    auto run_fn = prepareRun(curve, method);

    PointMultMeasurement out;
    out.curve = curve;
    out.method = method;
    out.mode = mode;

    uint64_t total_cycles = 0;
    FieldOpCounts total_ops;
    for (int i = 0; i < samples; i++) {
        BigUInt k = BigUInt(1) +
                    BigUInt::random(rng, env.scalarBound - BigUInt(1));
        MeasuredRun run = exec.measure(
            *env.field, [&] { run_fn(k); });
        total_cycles += run.cycles;
        total_ops = total_ops + run.ops;
    }
    out.run.cycles = total_cycles / samples;
    out.run.ops = total_ops;  // summed; callers mostly use cycles
    return out;
}

CurveFootprint
curveFootprint(CurveId curve, CpuMode mode)
{
    // Field-arithmetic ROM: measured from the assembled routines.
    auto field_rom = [&](const OpfPrime &prime) {
        OpfAvrLibrary lib(prime, mode);
        return lib.romBytes();
    };

    constexpr size_t fe = 20;  // one field element
    CurveFootprint fp{};
    switch (curve) {
      case CurveId::Secp160r1:
      case CurveId::WeierstrassOpf:
        fp.romBytes = field_rom(paperOpfPrime()) + 4000;
        // Jacobian accumulator (3 fe) + base & negated base (4 fe) +
        // formula temporaries (8 fe) + scalar (21) + NAF digit array
        // (161) + call stack (~46).
        fp.ramBytes = 3 * fe + 4 * fe + 8 * fe + 21 + 161 + 46;
        break;
      case CurveId::EdwardsOpf:
        fp.romBytes = field_rom(paperOpfPrime()) + 3800;
        // Two extended points (8 fe) + precomputed addends with 2d*t
        // (6 fe) + temporaries (8 fe) + scalar + NAF digits + stack.
        fp.ramBytes = 8 * fe + 6 * fe + 8 * fe + 21 + 161 + 40;
        break;
      case CurveId::MontgomeryOpf:
        fp.romBytes = field_rom(paperOpfPrime()) + 4600;
        // Two XZ points (4 fe) + base x (1 fe) + formula temporaries
        // (8 fe) + inversion scratch (4 fe) + scalar + stack.
        fp.ramBytes = 4 * fe + 1 * fe + 8 * fe + 4 * fe + 21 + 44;
        break;
      case CurveId::GlvOpf:
        fp.romBytes = field_rom(glvOpfPrimeUsed()) + 6400;
        // Precomputation table P, phi(P), P+-phi(P) (8 fe) + Jacobian
        // accumulator (3 fe) + temporaries (10 fe) + two half-length
        // scalars (2 * 11) + JSF digit pairs (2 * 82) + decomposition
        // scratch (6 fe) + stack.
        fp.ramBytes = 8 * fe + 3 * fe + 10 * fe + 22 + 164 + 6 * fe + 40;
        break;
    }
    return fp;
}

} // namespace jaavr
