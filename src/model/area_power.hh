/**
 * @file
 * Area and power models (DESIGN.md substitution #2).
 *
 * We cannot run the paper's 130 nm UMC standard-cell flow, so these
 * are analytic models calibrated against the paper's own reported
 * breakdowns:
 *
 *  - JAAVR core gate counts per mode come from Table I (6,166 GE for
 *    the CA core, +634 GE for the FAST CPI logic, +~1.5 kGE for the
 *    MAC unit);
 *  - program memory synthesized from logic cells costs ~1.44 GE per
 *    byte (the slope of Table III's ROM-bytes -> ROM-GE pairs);
 *  - the one-port register-file RAM macros fit GE = 1425 + 5.81 *
 *    bytes (fitted through Table III's (505, 4359) and (865, 6450)
 *    points; the intercept is the macro periphery).
 *
 * Power at 1 MHz: CPU ~18-20 uW by mode, ROM ~0.0108 uW/byte, RAM
 * ~0.0066 uW/byte — coarse averages of Table III's simulated values;
 * the paper itself notes ROM power varies with the access pattern.
 */

#ifndef JAAVR_MODEL_AREA_POWER_HH
#define JAAVR_MODEL_AREA_POWER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "avr/timing.hh"

namespace jaavr
{

class CallGraphProfiler;

/** Chip-area estimate in gate equivalents. */
struct AreaBreakdown
{
    double coreGe = 0;
    double romGe = 0;
    double ramGe = 0;

    double total() const { return coreGe + romGe + ramGe; }
};

/** Power estimate in microwatts at 1 MHz. */
struct PowerBreakdown
{
    double cpuUw = 0;
    double romUw = 0;
    double ramUw = 0;

    double total() const { return cpuUw + romUw + ramUw; }
};

class AreaModel
{
  public:
    /** JAAVR core size per mode (Table I calibration). */
    static double coreGe(CpuMode mode);

    /** Synthesized program memory. */
    static double romGe(size_t rom_bytes) { return 1.44 * rom_bytes; }

    /** One-port register-file RAM macro. */
    static double ramGe(size_t ram_bytes)
    {
        return 1425.0 + 5.81 * ram_bytes;
    }

    static AreaBreakdown
    chip(CpuMode mode, size_t rom_bytes, size_t ram_bytes)
    {
        AreaBreakdown a;
        a.coreGe = coreGe(mode);
        a.romGe = romGe(rom_bytes);
        a.ramGe = ramGe(ram_bytes);
        return a;
    }
};

class PowerModel
{
  public:
    static double cpuUw(CpuMode mode);
    static double romUw(size_t rom_bytes) { return 0.0108 * rom_bytes; }
    static double ramUw(size_t ram_bytes) { return 0.0066 * ram_bytes; }

    static PowerBreakdown
    chip(CpuMode mode, size_t rom_bytes, size_t ram_bytes)
    {
        PowerBreakdown p;
        p.cpuUw = cpuUw(mode);
        p.romUw = romUw(rom_bytes);
        p.ramUw = ramUw(ram_bytes);
        return p;
    }

    /** Energy of a computation at 1 MHz, in microjoules. */
    static double
    energyUj(const PowerBreakdown &p, uint64_t cycles)
    {
        return p.total() * (static_cast<double>(cycles) / 1e6);
    }
};

/**
 * Energy attribution of one profiled ISS run to one routine: the
 * profiler's per-routine cycle counts priced through the chip power
 * model at 1 MHz (energy = P_total * t, so cycles map linearly to
 * microjoules).
 */
struct RoutineEnergy
{
    std::string name;
    uint64_t calls = 0;
    uint64_t inclusiveCycles = 0; ///< callees included
    uint64_t exclusiveCycles = 0; ///< callees excluded
    double inclusiveUj = 0;
    double exclusiveUj = 0;
};

/**
 * Price every routine the profiler attributed cycles to through
 * @p power, sorted by inclusive energy (descending). The exclusive
 * columns sum to the whole run's energy; inclusive columns double-
 * count callees, exactly like the profiler's cycle report.
 */
std::vector<RoutineEnergy>
energyPerRoutine(const CallGraphProfiler &prof,
                 const PowerBreakdown &power);

/**
 * Human-readable microjoule-per-routine table for @p prof under
 * @p power; routines at @p max_rows and beyond are folded into an
 * "(other)" row so the totals always add up.
 */
std::string
energyPerRoutineReport(const CallGraphProfiler &prof,
                       const PowerBreakdown &power,
                       size_t max_rows = 16);

/**
 * Scaled Area-Runtime Product of Table III: normalized so the
 * reference configuration scores 1.00; HIGHER is BETTER (the paper:
 * "higher SARP value means better area-runtime product").
 */
inline double
sarp(double ref_area, uint64_t ref_cycles, double area, uint64_t cycles)
{
    return (ref_area * static_cast<double>(ref_cycles)) /
           (area * static_cast<double>(cycles));
}

} // namespace jaavr

#endif // JAAVR_MODEL_AREA_POWER_HH
