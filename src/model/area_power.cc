#include "model/area_power.hh"

#include <algorithm>
#include <cstdio>

#include "avr/profiler.hh"

namespace jaavr
{

double
AreaModel::coreGe(CpuMode mode)
{
    switch (mode) {
      case CpuMode::CA:
        return 6166;  // the bare ATmega128-compatible core
      case CpuMode::FAST:
        return 6800;  // +634 GE of single-cycle load/store/mul logic
      case CpuMode::ISE:
        return 8344;  // +1.5 kGE for the (32x4)-bit MAC unit
    }
    return 0;
}

double
PowerModel::cpuUw(CpuMode mode)
{
    // Averages of the per-curve CPU power values in Table III.
    switch (mode) {
      case CpuMode::CA:
        return 17.9;
      case CpuMode::FAST:
        return 19.0;
      case CpuMode::ISE:
        return 20.2;
    }
    return 0;
}

std::vector<RoutineEnergy>
energyPerRoutine(const CallGraphProfiler &prof,
                 const PowerBreakdown &power)
{
    std::vector<RoutineEnergy> out;
    for (const auto &[addr, node] : prof.nodes()) {
        RoutineEnergy e;
        e.name = prof.name(addr);
        e.calls = node.calls;
        e.inclusiveCycles = node.inclusiveCycles;
        e.exclusiveCycles = node.exclusiveCycles;
        e.inclusiveUj = PowerModel::energyUj(power, node.inclusiveCycles);
        e.exclusiveUj = PowerModel::energyUj(power, node.exclusiveCycles);
        out.push_back(std::move(e));
    }
    std::sort(out.begin(), out.end(),
              [](const RoutineEnergy &a, const RoutineEnergy &b) {
                  if (a.inclusiveUj != b.inclusiveUj)
                      return a.inclusiveUj > b.inclusiveUj;
                  return a.name < b.name;
              });
    return out;
}

std::string
energyPerRoutineReport(const CallGraphProfiler &prof,
                       const PowerBreakdown &power, size_t max_rows)
{
    std::vector<RoutineEnergy> rows = energyPerRoutine(prof, power);
    std::string out;
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  "  %-22s %8s %12s %12s %11s %11s\n", "routine",
                  "calls", "incl cyc", "excl cyc", "incl uJ",
                  "excl uJ");
    out += buf;
    RoutineEnergy other, total;
    size_t shown = 0;
    for (const RoutineEnergy &e : rows) {
        total.calls += e.calls;
        total.exclusiveCycles += e.exclusiveCycles;
        total.exclusiveUj += e.exclusiveUj;
        RoutineEnergy *fold = nullptr;
        if (shown < max_rows) {
            std::snprintf(buf, sizeof buf,
                          "  %-22s %8llu %12llu %12llu %11.4f %11.4f\n",
                          e.name.c_str(),
                          (unsigned long long)e.calls,
                          (unsigned long long)e.inclusiveCycles,
                          (unsigned long long)e.exclusiveCycles,
                          e.inclusiveUj, e.exclusiveUj);
            out += buf;
            shown++;
        } else {
            fold = &other;
        }
        if (fold) {
            fold->calls += e.calls;
            fold->inclusiveCycles += e.inclusiveCycles;
            fold->exclusiveCycles += e.exclusiveCycles;
            fold->inclusiveUj += e.inclusiveUj;
            fold->exclusiveUj += e.exclusiveUj;
        }
    }
    if (rows.size() > max_rows) {
        std::snprintf(buf, sizeof buf,
                      "  %-22s %8llu %12llu %12llu %11.4f %11.4f\n",
                      "(other)", (unsigned long long)other.calls,
                      (unsigned long long)other.inclusiveCycles,
                      (unsigned long long)other.exclusiveCycles,
                      other.inclusiveUj, other.exclusiveUj);
        out += buf;
    }
    std::snprintf(buf, sizeof buf,
                  "  %-22s %8llu %12s %12llu %11s %11.4f  "
                  "@ %.1f uW\n",
                  "total (exclusive)", (unsigned long long)total.calls,
                  "", (unsigned long long)total.exclusiveCycles, "",
                  total.exclusiveUj, power.total());
    out += buf;
    return out;
}

} // namespace jaavr
