#include "model/area_power.hh"

namespace jaavr
{

double
AreaModel::coreGe(CpuMode mode)
{
    switch (mode) {
      case CpuMode::CA:
        return 6166;  // the bare ATmega128-compatible core
      case CpuMode::FAST:
        return 6800;  // +634 GE of single-cycle load/store/mul logic
      case CpuMode::ISE:
        return 8344;  // +1.5 kGE for the (32x4)-bit MAC unit
    }
    return 0;
}

double
PowerModel::cpuUw(CpuMode mode)
{
    // Averages of the per-curve CPU power values in Table III.
    switch (mode) {
      case CpuMode::CA:
        return 17.9;
      case CpuMode::FAST:
        return 19.0;
      case CpuMode::ISE:
        return 20.2;
    }
    return 0;
}

} // namespace jaavr
