/**
 * @file
 * Per-field-operation cycle costs, measured on the instruction-set
 * simulator by running the generated OPF assembly routines
 * (DESIGN.md substitution #3: measured, not modeled, wherever we
 * have the assembly).
 */

#ifndef JAAVR_MODEL_FIELD_COSTS_HH
#define JAAVR_MODEL_FIELD_COSTS_HH

#include <cstdint>

#include "avr/timing.hh"
#include "nt/opf_prime.hh"

namespace jaavr
{

/** Cycle cost of each field operation on a given processor mode. */
struct FieldCycleCosts
{
    uint64_t add = 0;
    uint64_t sub = 0;
    uint64_t mul = 0;
    uint64_t sqr = 0;       ///< = mul: the library has no dedicated squaring
    uint64_t mulSmall = 0;  ///< multiplication by a <= 16-bit constant
    uint64_t inv = 0;       ///< full field inversion (Kaliski-style)

    /**
     * Fixed overhead charged per field-operation call: CALL/RET,
     * pointer setup and register spills around the assembly routine
     * (calibration documented in EXPERIMENTS.md).
     */
    uint64_t callOverhead = 40;
};

/**
 * Measure the costs for an OPF prime in the given mode by running the
 * generated routines on the ISS. Results are cached per (u, k, mode).
 *
 * Derived entries:
 *  - sqr = mul (the paper's library multiplies; Table I lists no
 *    separate squaring);
 *  - mulSmall = 0.28 * mul (paper, Section II-B: 0.25-0.3 M);
 *  - inv = the mean measured cycles of several runs of the generated
 *    Kaliski-inverse routine (data-dependent loop; see
 *    avrgen/opf_routines.hh and, for the analytic cross-check,
 *    model/inverse_model.hh).
 */
const FieldCycleCosts &opfFieldCosts(const OpfPrime &prime, CpuMode mode);

/**
 * Costs for the standardized secp160r1 field, measured by running
 * the generated assembly routine set (product scanning + the
 * dedicated 2^160 = 2^31 + 1 reduction; see
 * avrgen/secp160_routines.hh) on the ISS. The paper evaluates
 * secp160r1 only on the plain ATmega128 (CA); all modes are provided
 * for completeness — the additive reduction is exactly why this
 * field profits less from the MAC unit than the OPFs do.
 */
FieldCycleCosts secp160r1FieldCosts(CpuMode mode);

} // namespace jaavr

#endif // JAAVR_MODEL_FIELD_COSTS_HH
