#include "model/field_costs.hh"

#include <map>
#include <mutex>
#include <tuple>

#include "avrgen/opf_harness.hh"
#include "avrgen/secp160_harness.hh"
#include "field/secp160.hh"
#include "support/random.hh"

namespace jaavr
{

// The memo caches below are the only function-local mutable statics in
// the library (global-state audit, DESIGN.md §14); the mutexes make
// them safe for the service layer's concurrent worker contexts.
// std::map never invalidates element references, so returning
// `const FieldCycleCosts &` into the cache stays valid after unlock.

const FieldCycleCosts &
opfFieldCosts(const OpfPrime &prime, CpuMode mode)
{
    using Key = std::tuple<uint32_t, unsigned, CpuMode>;
    static std::mutex cache_mutex;
    static std::map<Key, FieldCycleCosts> cache;
    Key key{prime.u, prime.k, mode};
    {
        std::lock_guard<std::mutex> lock(cache_mutex);
        auto it = cache.find(key);
        if (it != cache.end())
            return it->second;
    }

    OpfField field(prime);
    OpfAvrLibrary lib(prime, mode);
    Rng rng(0xc057);
    auto a = field.fromBig(BigUInt::randomBits(rng, field.bits()));
    auto b = field.fromBig(BigUInt::randomBits(rng, field.bits()));

    FieldCycleCosts c;
    c.add = lib.add(a, b).cycles;
    c.sub = lib.sub(a, b).cycles;
    c.mul = lib.mul(a, b).cycles;
    c.sqr = c.mul;
    c.mulSmall = c.mul * 28 / 100;
    // Inversion is data-dependent (the Kaliski loop); use the mean of
    // several measured runs of the generated routine.
    const int inv_samples = 5;
    uint64_t inv_total = 0;
    for (int i = 0; i < inv_samples; i++) {
        BigUInt x = BigUInt(1) +
                    BigUInt::random(rng, prime.p - BigUInt(1));
        inv_total += lib.inv(field.fromBig(x)).cycles;
    }
    c.inv = inv_total / inv_samples;
    std::lock_guard<std::mutex> lock(cache_mutex);
    return cache.emplace(key, c).first->second;
}

FieldCycleCosts
secp160r1FieldCosts(CpuMode mode)
{
    static std::mutex cache_mutex;
    static std::map<CpuMode, FieldCycleCosts> cache;
    {
        std::lock_guard<std::mutex> lock(cache_mutex);
        auto it = cache.find(mode);
        if (it != cache.end())
            return it->second;
    }

    Secp160AvrLibrary lib(mode);
    Rng rng(0x5ec0);
    const BigUInt p = Secp160r1Field::primeValue();
    auto a = BigUInt::random(rng, p).toWords(5);
    auto b = BigUInt::random(rng, p).toWords(5);

    FieldCycleCosts c;
    c.add = lib.add(a, b).cycles;
    c.sub = lib.sub(a, b).cycles;
    c.mul = lib.mul(a, b).cycles;
    c.sqr = c.mul;
    c.mulSmall = c.mul * 28 / 100;
    const int inv_samples = 5;
    uint64_t inv_total = 0;
    for (int i = 0; i < inv_samples; i++) {
        BigUInt x = BigUInt(1) + BigUInt::random(rng, p - BigUInt(1));
        inv_total += lib.inv(x.toWords(5)).cycles;
    }
    c.inv = inv_total / inv_samples;
    std::lock_guard<std::mutex> lock(cache_mutex);
    return cache.emplace(mode, c).first->second;
}

} // namespace jaavr
