/**
 * @file
 * Cycle model of the field inversion (the paper uses a Montgomery
 * inverse in the projective-to-affine conversion, Section V-B, and
 * reports 189k/128k/124k cycles in Table I).
 *
 * We count the exact number of iterations of the binary extended
 * Euclid (Kaliski almost-inverse) loop for given operands on the
 * host — this is the data-dependent part the paper mentions when it
 * says the "constant time" implementations are not fully constant
 * time — and charge a per-iteration cost of 2.4 modular-addition
 * equivalents (one multi-precision shift, one conditional
 * add/subtract and loop control), plus two Montgomery multiplications
 * for the phase-2 correction.
 */

#ifndef JAAVR_MODEL_INVERSE_MODEL_HH
#define JAAVR_MODEL_INVERSE_MODEL_HH

#include <cstdint>

#include "bigint/big_uint.hh"

namespace jaavr
{

/**
 * Iteration count of the Kaliski almost-Montgomery-inverse phase 1
 * for inverting @p a modulo @p p. Between bits(p) and 2*bits(p).
 */
uint64_t kaliskiIterations(const BigUInt &a, const BigUInt &p);

/** Average iteration count for random operands (~1.41 * n). */
uint64_t kaliskiAverageIterations(unsigned bits);

/** Per-iteration cycle charge given the modular-addition cost. */
inline uint64_t
kaliskiIterationCycles(uint64_t add_cycles)
{
    // Each iteration updates both the (u, v) pair and the (r, s)
    // coefficient pair: one multi-precision shift and one conditional
    // add/subtract on each (~2.6 adds) plus loop/pointer control
    // (~0.7 add). With the measured 245-cycle CA addition this puts a
    // 160-bit inversion at ~182k + 2 mul cycles, matching the paper's
    // 189k Table I entry.
    return add_cycles * 33 / 10;
}

} // namespace jaavr

#endif // JAAVR_MODEL_INVERSE_MODEL_HH
