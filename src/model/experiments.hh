/**
 * @file
 * The experiment definitions shared by the Table II / Table III
 * benchmark binaries: which curve runs which point-multiplication
 * method, how a run is measured, and the per-configuration memory
 * footprints feeding the area model.
 */

#ifndef JAAVR_MODEL_EXPERIMENTS_HH
#define JAAVR_MODEL_EXPERIMENTS_HH

#include <string>

#include "model/cycle_executor.hh"
#include "support/random.hh"

namespace jaavr
{

/** The five curve configurations of the paper's evaluation. */
enum class CurveId
{
    Secp160r1,     ///< standardized reference curve
    WeierstrassOpf,
    EdwardsOpf,
    MontgomeryOpf,
    GlvOpf,
};

/** Point-multiplication methods (Table II's "Method" column). */
enum class PmMethod
{
    Naf,       ///< NAF double-and-add (high speed)
    Daaa,      ///< double-and-add-always (constant pattern)
    CozLadder, ///< Montgomery ladder via co-Z additions ("Mon")
    XzLadder,  ///< x-only Montgomery-curve ladder ("Mon")
    GlvJsf,    ///< endomorphism + JSF ("End, JSF")
    Binary,    ///< plain double-and-add (baseline, not in the paper)
};

const char *curveName(CurveId id);
const char *methodName(PmMethod m);

/** One measured scalar multiplication. */
struct PointMultMeasurement
{
    CurveId curve;
    PmMethod method;
    CpuMode mode;
    MeasuredRun run;
};

/**
 * Execute a full scalar multiplication of the given configuration on
 * the host golden model with cycle accounting (ISS-measured field-op
 * costs for @p mode). The scalar is drawn from @p rng (reduced mod
 * the group order where it is known).
 */
PointMultMeasurement
measurePointMult(CurveId curve, PmMethod method, CpuMode mode, Rng &rng);

/**
 * Repeat @p measurePointMult over @p samples random scalars and
 * return the measurement with the mean cycle count (NAF/JSF runtimes
 * are data-dependent).
 */
PointMultMeasurement
measurePointMultAvg(CurveId curve, PmMethod method, CpuMode mode,
                    Rng &rng, int samples);

/** Program and data memory footprint of a configuration. */
struct CurveFootprint
{
    size_t romBytes;
    size_t ramBytes;
};

/**
 * Memory footprint model: ROM = measured bytes of the generated OPF
 * field routines for the mode plus a per-curve estimate of the
 * point-arithmetic and driver code; RAM = the sum of the live
 * field-element buffers, scalar/recoding storage, and stack of the
 * method (itemized in experiments.cc). EXPERIMENTS.md discusses the
 * calibration.
 */
CurveFootprint curveFootprint(CurveId curve, CpuMode mode);

} // namespace jaavr

#endif // JAAVR_MODEL_EXPERIMENTS_HH
