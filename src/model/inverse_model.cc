#include "model/inverse_model.hh"

#include "support/logging.hh"
#include "support/random.hh"

namespace jaavr
{

uint64_t
kaliskiIterations(const BigUInt &a, const BigUInt &p)
{
    if (a.isZero())
        panic("kaliskiIterations: inversion of zero");
    BigUInt u = p, v = a % p;
    uint64_t k = 0;
    // Phase 1 of Kaliski's algorithm; r/s coefficient updates cost the
    // same per iteration and do not change the count, so only u/v are
    // tracked here.
    while (!v.isZero()) {
        if (!u.isOdd())
            u = u >> 1;
        else if (!v.isOdd())
            v = v >> 1;
        else if (u > v)
            u = (u - v) >> 1;
        else
            v = (v - u) >> 1;
        k++;
    }
    return k;
}

uint64_t
kaliskiAverageIterations(unsigned bits)
{
    // Empirical average for random field elements is very close to
    // 1.41 * bits * ... just measure it once per size.
    static thread_local unsigned cached_bits = 0;
    static thread_local uint64_t cached_avg = 0;
    if (cached_bits == bits)
        return cached_avg;

    Rng rng(0x17e4);
    BigUInt p = (BigUInt(0xff4c) << (bits - 16)) + BigUInt(1);
    uint64_t total = 0;
    const int samples = 50;
    for (int i = 0; i < samples; i++) {
        BigUInt a = BigUInt(1) + BigUInt::random(rng, p - BigUInt(1));
        total += kaliskiIterations(a, p);
    }
    cached_bits = bits;
    cached_avg = total / samples;
    return cached_avg;
}

} // namespace jaavr
