/**
 * @file
 * The hybrid cycle-accounting executor (DESIGN.md substitution #3):
 * runs the real curve arithmetic on the host golden model while a
 * FieldOpCounts counter records every field operation, then converts
 * the counts into JAAVR cycles using the ISS-measured per-operation
 * costs. Data-dependent behaviour (NAF/JSF digit patterns, dummy
 * operations, ladder length) is captured exactly because the real
 * algorithms run.
 */

#ifndef JAAVR_MODEL_CYCLE_EXECUTOR_HH
#define JAAVR_MODEL_CYCLE_EXECUTOR_HH

#include <functional>

#include "field/prime_field.hh"
#include "model/field_costs.hh"

namespace jaavr
{

/** Outcome of one cycle-accounted run. */
struct MeasuredRun
{
    FieldOpCounts ops;   ///< exact operation counts
    uint64_t cycles = 0; ///< modeled JAAVR cycles

    /** Total number of field-routine calls (for overhead charging). */
    uint64_t
    totalCalls() const
    {
        return ops.mul + ops.sqr + ops.add + ops.sub + ops.mulSmall +
               ops.inv;
    }
};

class CycleExecutor
{
  public:
    explicit CycleExecutor(const FieldCycleCosts &costs) : c(costs) {}

    /** Convert already-collected counts into cycles. */
    uint64_t
    cyclesFor(const FieldOpCounts &ops) const
    {
        uint64_t calls = ops.mul + ops.sqr + ops.add + ops.sub +
                         ops.mulSmall + ops.inv;
        return ops.mul * c.mul + ops.sqr * c.sqr + ops.add * c.add +
               ops.sub * c.sub + ops.mulSmall * c.mulSmall +
               ops.inv * c.inv + calls * c.callOverhead;
    }

    /**
     * Run @p body with a counter attached to @p field and account the
     * operations it performs.
     */
    MeasuredRun
    measure(const PrimeField &field,
            const std::function<void()> &body) const
    {
        FieldOpCounts counts;
        FieldOpCounts *prev = field.attachedCounter();
        field.attachCounter(&counts);
        body();
        field.attachCounter(prev);
        MeasuredRun run;
        run.ops = counts;
        run.cycles = cyclesFor(counts);
        return run;
    }

    const FieldCycleCosts &costs() const { return c; }

  private:
    FieldCycleCosts c;
};

} // namespace jaavr

#endif // JAAVR_MODEL_CYCLE_EXECUTOR_HH
