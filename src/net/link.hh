/**
 * @file
 * LossyLink: a deterministic, seeded, simulated-time model of a bad
 * radio/UART hop. Each transmitted datagram independently suffers
 * drop, duplication, reordering (an extra hold that lets later
 * frames overtake), a single-bit flip, and a base-plus-jitter
 * delivery latency — all drawn from one Rng seeded per link, so a
 * fixed seed replays the exact same impairment sequence.
 *
 * Time is explicit: callers pass the current simulated microsecond
 * into transmit() and drain(); the link never reads a clock. That is
 * what makes the chaos campaign byte-identical across reruns.
 *
 * A LinkTap hook observes (and may mutate or veto) every datagram
 * at transmit time. FaultLinkTap adapts the PR 3 FaultInjector to
 * this hook so the same deterministic trigger machinery — including
 * the multi-shot burst schedules — can corrupt frames in flight:
 * the plan's trigger fires on (frame index, simulated time) instead
 * of (PC, cycle), the sramAddr field selects the byte offset and the
 * mask the XOR, and an InstSkip plan drops the frame outright.
 */

#ifndef JAAVR_NET_LINK_HH
#define JAAVR_NET_LINK_HH

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "avr/fault.hh"
#include "support/random.hh"

namespace jaavr::net
{

/** Simulated time in microseconds. */
using SimTime = uint64_t;

/** Impairment model of one unidirectional link. */
struct LinkConfig
{
    uint32_t dropPermil = 0;    ///< P(datagram vanishes) * 1000
    uint32_t dupPermil = 0;     ///< P(delivered twice) * 1000
    uint32_t reorderPermil = 0; ///< P(held back to overtake) * 1000
    uint32_t flipPermil = 0;    ///< P(one random bit flipped) * 1000
    SimTime latencyUs = 500;       ///< base one-way latency
    SimTime jitterUs = 200;        ///< uniform extra [0, jitterUs]
    SimTime reorderHoldUs = 2000;  ///< extra delay for reordered frames
    uint64_t seed = 1;
};

/** Counters of everything the link did to the traffic. */
struct LinkStats
{
    uint64_t transmitted = 0; ///< datagrams handed to transmit()
    uint64_t delivered = 0;   ///< datagrams handed out by drain()
    uint64_t dropped = 0;
    uint64_t duplicated = 0;
    uint64_t reordered = 0;
    uint64_t bitFlipped = 0;
    uint64_t tapDropped = 0;  ///< vetoed by the LinkTap
    uint64_t tapMutated = 0;  ///< mutated by the LinkTap
};

/** Transmit-time observer hook; see FaultLinkTap. */
class LinkTap
{
  public:
    virtual ~LinkTap() = default;

    /**
     * Called for every datagram entering the link, before the
     * impairment draws. @p index counts transmissions on this link.
     * Mutate @p data in place to corrupt; return false to drop.
     */
    virtual bool onTransmit(std::vector<uint8_t> &data, SimTime now,
                            uint64_t index) = 0;
};

class LossyLink
{
  public:
    explicit LossyLink(const LinkConfig &config)
        : cfg(config), rng(config.seed)
    {}

    /** Submit @p data at time @p now; impairments drawn here. */
    void transmit(std::vector<uint8_t> data, SimTime now);

    /** All datagrams due at or before @p now, in delivery order. */
    std::vector<std::vector<uint8_t>> drain(SimTime now);

    /** Time of the earliest queued delivery; ~0 when idle. */
    SimTime
    nextDeliveryAt() const
    {
        return queue.empty() ? ~SimTime(0) : queue.begin()->first.first;
    }

    bool idle() const { return queue.empty(); }

    const LinkStats &stats() const { return st; }

    /** Live impairment knobs (campaigns flip rates mid-run). */
    LinkConfig &config() { return cfg; }

    /** Attach @p tap (nullptr detaches); must outlive the link. */
    void setTap(LinkTap *tap) { tapV = tap; }

  private:
    void enqueue(std::vector<uint8_t> data, SimTime at);

    LinkConfig cfg;
    Rng rng;
    LinkTap *tapV = nullptr;
    LinkStats st;
    uint64_t txIndex = 0;
    uint64_t orderCounter = 0; ///< tie-break for same-instant arrivals
    std::map<std::pair<SimTime, uint64_t>, std::vector<uint8_t>> queue;
};

/**
 * A bidirectional hop: two independently seeded LossyLinks. The
 * reverse direction derives its seed from the forward one so a
 * single campaign seed still pins both directions.
 */
struct DuplexLink
{
    explicit DuplexLink(const LinkConfig &config)
        : forward(config), backward(reverseConfig(config))
    {}

    static LinkConfig
    reverseConfig(LinkConfig c)
    {
        c.seed = c.seed * 0x9e3779b97f4a7c15ULL + 1;
        return c;
    }

    LossyLink forward;  ///< initiator -> responder
    LossyLink backward; ///< responder -> initiator
};

/**
 * FaultInjector-driven frame corruption (see file comment). The
 * injector is armed by the caller — single-shot or a burstPlans()
 * schedule — and polled here with (frame index, simulated time).
 */
class FaultLinkTap : public LinkTap
{
  public:
    explicit FaultLinkTap(FaultInjector &injector) : inj(injector) {}

    bool
    onTransmit(std::vector<uint8_t> &data, SimTime now,
               uint64_t index) override
    {
        if (!inj.pending() ||
            !inj.checkFire(static_cast<uint32_t>(index & 0xffff), now))
            return true;
        const FaultPlan &p = inj.plan();
        if (p.target == FaultTarget::InstSkip)
            return false; // "skip" drops the frame in flight
        if (!data.empty())
            data[p.sramAddr % data.size()] ^=
                static_cast<uint8_t>(p.mask ? p.mask : 1);
        return true;
    }

  private:
    FaultInjector &inj;
};

} // namespace jaavr::net

#endif // JAAVR_NET_LINK_HH
