#include "net/testbed.hh"

#include <stdexcept>

namespace jaavr::net
{

Node &
Testbed::addNode(const NodeConfig &config)
{
    auto [it, fresh] = nodes.emplace(
        config.name, std::make_unique<Node>(config, curve, dsa));
    if (!fresh)
        throw std::invalid_argument("duplicate node " + config.name);
    return *it->second;
}

DuplexLink &
Testbed::connect(const std::string &a, const std::string &b,
                 const LinkConfig &config)
{
    Node &na = node(a);
    Node &nb = node(b);
    edges.push_back(std::make_unique<Edge>(a, b, config));
    Edge &e = *edges.back();
    na.addPeer(b, nb.identity(),
               [&e](std::vector<uint8_t> data, SimTime t) {
                   e.link.forward.transmit(std::move(data), t);
               });
    nb.addPeer(a, na.identity(),
               [&e](std::vector<uint8_t> data, SimTime t) {
                   e.link.backward.transmit(std::move(data), t);
               });
    return e.link;
}

DuplexLink &
Testbed::edge(const std::string &a, const std::string &b)
{
    for (auto &e : edges)
        if ((e->a == a && e->b == b) || (e->a == b && e->b == a))
            return e->link;
    throw std::invalid_argument("no edge " + a + " <-> " + b);
}

void
Testbed::run(SimTime until, SimTime step)
{
    while (clock < until) {
        clock += step;
        if (clock > until)
            clock = until;
        for (auto &e : edges) {
            for (auto &data : e->link.forward.drain(clock))
                node(e->b).onWire(e->a, data, clock);
            for (auto &data : e->link.backward.drain(clock))
                node(e->a).onWire(e->b, data, clock);
        }
        for (auto &[name, n] : nodes)
            n->tick(clock);
    }
}

void
Testbed::publishMetrics(MetricsRegistry &reg) const
{
    for (const auto &[name, n] : nodes)
        n->publishMetrics(reg);
}

} // namespace jaavr::net
