/**
 * @file
 * Wire codec for the simulated IoT network: a fixed sync-worded,
 * CRC-32-framed datagram format carrying the session layer's type /
 * session-epoch / seq / ack header and an opaque payload.
 *
 * The decoder follows the same contract as the RSP packet codec
 * (debug/rsp.hh): it is an incremental state machine fed arbitrary
 * byte clumps from an untrusted link, it never aborts, and malformed
 * input of any kind — corrupted sync, bad CRC, truncated frames,
 * oversized or lying length fields, plain garbage — is classified
 * into BadFrame events while the scanner resynchronises on the next
 * sync word. A bad length or CRC only advances the scan past the
 * sync word that started the frame, so a valid frame contained
 * inside a corrupted one's claimed extent is still recovered.
 *
 * Wire layout (little-endian):
 *
 *   off  size  field
 *   0    2     sync 0xa5 0x5a
 *   2    1     version (kFrameVersion)
 *   3    1     type (FrameType)
 *   4    4     session epoch
 *   8    4     seq
 *   12   4     ack
 *   16   2     payload length (<= kFrameMaxPayload)
 *   18   n     payload
 *   18+n 4     CRC-32 over bytes [2, 18+n)
 */

#ifndef JAAVR_NET_FRAME_HH
#define JAAVR_NET_FRAME_HH

#include <cstdint>
#include <string>
#include <vector>

namespace jaavr::net
{

constexpr uint8_t kFrameSync0 = 0xa5;
constexpr uint8_t kFrameSync1 = 0x5a;
constexpr uint8_t kFrameVersion = 1;
constexpr size_t kFrameHeaderSize = 18;
constexpr size_t kFrameCrcSize = 4;
constexpr size_t kFrameMaxPayload = 1024;

/** Session-layer meaning of a frame. */
enum class FrameType : uint8_t
{
    Hello = 1,    ///< handshake: ephemeral key + identity signature
    HelloAck = 2, ///< handshake reply, same contents
    Data = 3,     ///< signed + MAC'd telemetry
    Ack = 4,      ///< cumulative acknowledgement (ack = next expected)
};

/** Short stable name for @p t ("hello", "data", ...). */
const char *frameTypeName(FrameType t);

/** One decoded (or to-be-encoded) frame. */
struct Frame
{
    FrameType type = FrameType::Data;
    uint32_t session = 0; ///< session epoch; bumped on every re-key
    uint32_t seq = 0;
    uint32_t ack = 0;
    std::vector<uint8_t> payload;
};

/** Serialize @p f (payload clamped to kFrameMaxPayload). */
std::vector<uint8_t> encodeFrame(const Frame &f);

/** One decoder event: a good frame or a diagnosed bad one. */
struct FrameEvent
{
    enum class Kind
    {
        Frame,    ///< CRC-verified frame in @c frame
        BadFrame, ///< malformed; @c reason says why
    };

    Kind kind;
    Frame frame;
    std::string reason;
};

/** Running totals of everything the decoder has classified. */
struct FrameDecoderStats
{
    uint64_t frames = 0;       ///< CRC-verified frames delivered
    uint64_t badCrc = 0;       ///< sync found but CRC mismatched
    uint64_t badLength = 0;    ///< length field over kFrameMaxPayload
    uint64_t badVersion = 0;   ///< unknown version byte
    uint64_t garbageBytes = 0; ///< bytes discarded hunting for sync
};

/**
 * Incremental frame decoder. feed() accepts bytes in arbitrary
 * clumps (single bytes, split headers, many frames at once) and
 * returns the completed events in arrival order; partial frames stay
 * buffered across calls. Buffered state is bounded by one maximal
 * frame, so a hostile length field cannot grow memory.
 */
class FrameDecoder
{
  public:
    std::vector<FrameEvent> feed(const uint8_t *data, size_t len);

    std::vector<FrameEvent>
    feed(const std::vector<uint8_t> &data)
    {
        return feed(data.data(), data.size());
    }

    /** True while bytes of an incomplete frame are buffered. */
    bool midFrame() const { return !buf.empty(); }

    const FrameDecoderStats &stats() const { return st; }

  private:
    std::vector<uint8_t> buf;
    FrameDecoderStats st;
};

} // namespace jaavr::net

#endif // JAAVR_NET_FRAME_HH
