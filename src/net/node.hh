/**
 * @file
 * Node: one simulated IoT endpoint. A node owns an ECDSA identity
 * key on the shared curve, and per peer a ReliableSession plus the
 * cryptographic session state: an ECDH handshake establishes an
 * epoch key, then telemetry flows as ECDSA-signed, HMAC-tagged Data
 * frames. All randomness (ephemeral keys, ECDSA nonces, backoff
 * jitter) comes from seeded Rngs, so a fixed seed replays the node
 * bit-for-bit in simulated time.
 *
 * Handshake (initiator I, responder R, epoch e):
 *   I->R  Hello    ephemeral Q_I, ECDSA_identity(I)("hello", e, ...)
 *   R->I  HelloAck ephemeral Q_R, ECDSA_identity(R)("helloack", ...)
 * Both derive K_e = SHA-256(kdf-label, e, x(d*Q_peer), I, R); from
 * then on every Data/Ack frame of epoch e carries a 16-byte
 * truncated HMAC-SHA-256 tag under K_e. Hello/HelloAck are
 * unsequenced (retransmitted by the node itself, with the session's
 * backoff policy) and carry only an unkeyed integrity tag — their
 * real gate is the identity signature, checked here before any state
 * is reset. Keeping handshake frames out of the sequence space means
 * every sequence slot is claimed by keyed traffic, so forged
 * handshake frames can never shadow genuine telemetry. Each epoch
 * starts a fresh sequence space; a higher-epoch Hello from a
 * registered peer (with a valid identity signature) supersedes the
 * session — that is how both initial connects and re-keys arrive.
 * When two nodes Hello each other simultaneously at the same epoch,
 * the lexicographically smaller name keeps the initiator role.
 *
 * Degradation ladder (the robustness story this layer exists for):
 *  1. a frame failing its keyed MAC or a telemetry payload failing
 *     signature verification bumps a consecutive-failure counter;
 *     at authFailRekeyThreshold the node re-keys: epoch+1, fresh
 *     handshake, and every unacknowledged telemetry payload is
 *     re-signed under the new epoch and re-queued so nothing is
 *     lost;
 *  2. a handshake that times out, or a session that exhausts its
 *     retransmit budget, counts a failure streak; at
 *     failStreakQuarantineThreshold the peer is quarantined —
 *     no traffic in or out — for an exponentially growing, capped
 *     backoff, after which the node probes again with a fresh
 *     handshake;
 *  3. every transition publishes through the MetricsRegistry
 *     (net_node_* / net_session_* names) so `monitor metrics`-style
 *     consumers and the chaos campaign read the same counters.
 */

#ifndef JAAVR_NET_NODE_HH
#define JAAVR_NET_NODE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "curves/ecdsa.hh"
#include "net/session.hh"
#include "obs/flight.hh"
#include "support/metrics.hh"

namespace jaavr::net
{

struct NodeConfig
{
    std::string name;
    uint64_t seed = 1;
    SessionConfig session;

    /** Consecutive MAC/signature failures before a re-key. */
    uint32_t authFailRekeyThreshold = 3;
    /** Handshake/session failures before quarantine. */
    uint32_t failStreakQuarantineThreshold = 3;
    SimTime handshakeTimeoutUs = 60'000;
    SimTime quarantineBaseUs = 250'000;  ///< first quarantine hold
    SimTime quarantineMaxUs = 4'000'000; ///< backoff cap
    size_t telemetryQueueCap = 256;      ///< app-level backpressure
};

enum class PeerState : uint8_t
{
    Idle,        ///< registered, no session attempted yet
    Handshaking, ///< Hello in flight, no epoch key yet
    Established, ///< keyed; telemetry flows
    Quarantined, ///< too many failures; waiting out the backoff
};

const char *peerStateName(PeerState s);

struct NodeStats
{
    uint64_t handshakesCompleted = 0;
    uint64_t handshakeFailures = 0;    ///< timeouts + session failures
    uint64_t handshakeRetransmits = 0; ///< Hello/HelloAck resends
    uint64_t rekeys = 0;               ///< auth-ladder epoch bumps
    uint64_t quarantineEvents = 0;
    uint64_t authFailures = 0;      ///< keyed-MAC + signature rejects
    uint64_t telemetryQueued = 0;   ///< accepted from the app
    uint64_t telemetryRefused = 0;  ///< app backpressure (queue cap)
    uint64_t telemetryAcked = 0;    ///< confirmed delivered
    uint64_t telemetryAccepted = 0; ///< received & fully verified
    uint64_t telemetryRejected = 0; ///< received, failed verification
    uint64_t staleEpochIgnored = 0; ///< old-epoch frames discarded
};

class Node
{
  public:
    using TransmitFn =
        std::function<void(std::vector<uint8_t>, SimTime)>;
    /** (peer name, verified telemetry payload, receive time). */
    using TelemetryFn = std::function<void(
        const std::string &, const std::vector<uint8_t> &, SimTime)>;

    /**
     * @param config node identity/knobs; config.name must be unique
     * @param curve  shared curve (must outlive the node)
     * @param dsa    signature context over the same curve and
     *               generator (must outlive the node)
     */
    Node(const NodeConfig &config, const WeierstrassCurve &curve,
         const Ecdsa &dsa);
    ~Node();

    Node(const Node &) = delete;
    Node &operator=(const Node &) = delete;

    const std::string &name() const { return cfg.name; }

    /** This node's identity public key (provisioned to peers). */
    const AffinePoint &identity() const { return identityPair.q; }

    /**
     * Register @p peer with its provisioned identity key and the
     * transmit function for the link towards it.
     */
    void addPeer(const std::string &peer,
                 const AffinePoint &identity_key, TransmitFn transmit);

    /** Start a handshake towards @p peer (no-op while one runs). */
    void connect(const std::string &peer, SimTime now);

    /**
     * Queue @p payload for signed delivery to @p peer (handshaking
     * first if needed). Returns false when the app-level queue is
     * full (backpressure); queued payloads survive re-keys and
     * quarantines.
     */
    bool sendTelemetry(const std::string &peer,
                       std::vector<uint8_t> payload, SimTime now);

    /** Feed bytes arriving on the link from @p peer. */
    void onWire(const std::string &peer,
                const std::vector<uint8_t> &data, SimTime now);

    /** Timers: retransmits, handshake deadlines, quarantine expiry. */
    void tick(SimTime now);

    void setTelemetryHandler(TelemetryFn fn)
    {
        onTelemetry = std::move(fn);
    }

    PeerState peerState(const std::string &peer) const;
    uint32_t peerEpoch(const std::string &peer) const;
    /** Telemetry payloads not yet confirmed delivered to @p peer. */
    size_t peerBacklog(const std::string &peer) const;

    const NodeStats &stats() const { return st; }
    const SessionStats &sessionStats(const std::string &peer) const;

    /**
     * Publish node counters (net_node_*, labeled node=), per-peer
     * gauges (net_peer_*, labeled node=/peer=) and every peer
     * session's counters (net_session_*, same labels) into @p reg.
     * Safe to call repeatedly; counters are monotonic.
     */
    void publishMetrics(MetricsRegistry &reg) const;

    /**
     * Attach a span tracer (nullptr detaches). While enabled, every
     * telemetry payload gets a trace ID at sendTelemetry that
     * follows it through session send/retransmit/ack (one
     * "telemetry" span queue → delivery-confirmed, plus the
     * session's "send_ack"/"retransmit" records), and every
     * handshake / re-key / quarantine transition lands as an
     * instant event — all in deterministic simulated time, in this
     * node's own ring ("node:<name>").
     */
    void setTracer(obs::SpanTracer *t);

    /**
     * Attach a flight recorder (nullptr detaches). Auth-failure
     * streaks (the forgery-rejection ladder), re-keys, quarantines
     * and telemetry backpressure are retained; a streak reaching
     * the re-key threshold fires a dump trigger
     * ("net_forgery_streak"), as does the onset of backpressure.
     */
    void setFlightRecorder(obs::FlightRecorder *f);

  private:
    struct Peer;
    class PeerAuth;

    Peer &peerRef(const std::string &peer);
    const Peer &peerRef(const std::string &peer) const;

    void beginHandshake(Peer &p, uint32_t epoch, SimTime now);
    void quarantine(Peer &p, SimTime now);
    void escalateFailure(Peer &p, SimTime now);
    void authFailure(Peer &p, SimTime now);
    void establish(Peer &p, SimTime now);
    void flushTelemetry(Peer &p, SimTime now);
    void requeueUnacked(Peer &p);

    void handleHandshake(Peer &p, const Frame &f, SimTime now);
    void handleHello(Peer &p, const Frame &f, SimTime now);
    void handleHelloAck(Peer &p, const Frame &f, SimTime now);
    void handleData(Peer &p, const Frame &f, SimTime now);

    std::vector<uint8_t> helloPayload(Peer &p, const char *label);
    bool verifyHello(const Peer &p, const char *label, const Frame &f,
                     AffinePoint &eph_out) const;
    bool deriveKey(Peer &p, const AffinePoint &peer_eph,
                   const std::string &initiator,
                   const std::string &responder);
    std::vector<uint8_t>
    signTelemetry(Peer &p, const std::vector<uint8_t> &app);
    std::vector<uint8_t> sealRaw(const Frame &f) const;
    SimTime backoffStep(Peer &p, SimTime &rto);

    /** Instant trace event (no-op unless the tracer is enabled). */
    void noteEvent(const char *name, SimTime now,
                   const char *arg0_name, uint64_t arg0,
                   const char *arg1_name, uint64_t arg1,
                   uint64_t trace_id = 0);

    NodeConfig cfg;
    const WeierstrassCurve &curve;
    const Ecdsa &dsa;
    size_t scalarBytes; ///< serialized width of coords and scalars
    Rng rng;
    EcdsaKeyPair identityPair;
    NodeStats st;
    TelemetryFn onTelemetry;
    std::map<std::string, std::unique_ptr<Peer>> peers;

    // Observability (src/obs/): optional, deterministic sim time.
    obs::SpanTracer *tracer = nullptr;
    obs::SpanRing *traceRing = nullptr;
    obs::FlightRecorder *flight = nullptr;
    obs::FlightRecorder::Source *flightSrc = nullptr;
};

} // namespace jaavr::net

#endif // JAAVR_NET_NODE_HH
