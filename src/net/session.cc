#include "net/session.hh"

#include <algorithm>

namespace jaavr::net
{

ReliableSession::ReliableSession(const SessionConfig &config)
    : cfg(config), rng(config.seed)
{}

void
ReliableSession::reset(uint32_t new_epoch)
{
    epochV = new_epoch;
    sendNext = 0;
    recvNext = 0;
    failedV = false;
    outstanding.clear();
    held.clear();
}

void
ReliableSession::transmitFrame(Frame f, SimTime now)
{
    f.ack = recvNext; // piggybacked cumulative ack, always fresh
    if (auth) {
        FrameAuth::Tag tag = auth->seal(f);
        f.payload.insert(f.payload.end(), tag.begin(), tag.end());
    }
    if (transmit)
        transmit(encodeFrame(f), now);
}

void
ReliableSession::sendAck(SimTime now)
{
    Frame f;
    f.type = FrameType::Ack;
    f.session = epochV;
    f.seq = 0;
    st.acksSent++;
    transmitFrame(std::move(f), now);
}

void
ReliableSession::scheduleRetransmit(Outstanding &o, SimTime now)
{
    SimTime jitterSpan = o.rto * cfg.jitterPermil / 1000;
    SimTime jitter = jitterSpan ? rng.below(jitterSpan + 1) : 0;
    o.nextAt = now + o.rto + jitter;
}

bool
ReliableSession::send(FrameType type, std::vector<uint8_t> payload,
                      SimTime now, uint64_t trace_id)
{
    if (failedV || outstanding.size() >= cfg.window) {
        st.sendRefused++;
        return false;
    }
    Outstanding o;
    o.frame.type = type;
    o.frame.session = epochV;
    o.frame.seq = sendNext++;
    o.frame.payload = std::move(payload);
    o.rto = cfg.rtoUs;
    o.traceId = trace_id;
    o.firstSentAt = now;
    scheduleRetransmit(o, now);
    st.framesSent++;
    // Registered before transmitting: the transmit callback may
    // deliver synchronously (zero-latency links) and the returning
    // ack must find the frame to clear it.
    Frame wire = o.frame;
    uint32_t seq = o.frame.seq;
    outstanding.emplace(seq, std::move(o));
    transmitFrame(std::move(wire), now);
    return true;
}

void
ReliableSession::processAck(uint32_t ack, SimTime now)
{
    while (!outstanding.empty() && outstanding.begin()->first < ack) {
        Outstanding &o = outstanding.begin()->second;
        if (traceRing && tracer->enabled()) {
            obs::SpanRecord s;
            s.name = "send_ack";
            s.cat = "net";
            s.traceId = o.traceId;
            s.spanId = tracer->newSpanId();
            s.beginUs = o.firstSentAt;
            s.endUs = std::max(now, o.firstSentAt);
            s.arg0Name = "seq";
            s.arg0 = o.frame.seq;
            s.arg1Name = "retries";
            s.arg1 = o.retries;
            traceRing->push(s);
        }
        if (acked)
            acked(o.frame, now);
        outstanding.erase(outstanding.begin());
    }
}

void
ReliableSession::handleFrame(const Frame &f, SimTime now)
{
    // Handshake frames are unsequenced and epoch-agnostic here: the
    // node owns their retransmission, verification and epoch logic.
    if (f.type == FrameType::Hello || f.type == FrameType::HelloAck) {
        if (handshake)
            handshake(f, now);
        return;
    }
    if (f.session != epochV) {
        st.foreignEpoch++;
        if (foreign)
            foreign(f, now);
        return;
    }
    processAck(f.ack, now);
    if (f.type == FrameType::Ack)
        return;

    // Sequenced frame. Anything below recvNext was already
    // delivered: drop it but re-ack (our ack may have been lost).
    if (f.seq < recvNext) {
        st.duplicatesDropped++;
        sendAck(now);
        return;
    }
    if (f.seq == recvNext) {
        recvNext++;
        st.delivered++;
        if (deliver)
            deliver(f, now);
        // Release any directly following held frames in order.
        while (!held.empty() && held.begin()->first == recvNext) {
            Frame next = std::move(held.begin()->second);
            held.erase(held.begin());
            recvNext++;
            st.delivered++;
            if (deliver)
                deliver(next, now);
        }
        sendAck(now);
        return;
    }
    // A gap: hold the frame if the reorder buffer allows, and emit a
    // duplicate ack so the sender learns what we are still missing.
    if (f.seq - recvNext <= cfg.reorderBuffer &&
        held.size() < cfg.reorderBuffer && !held.count(f.seq)) {
        held.emplace(f.seq, f);
        st.outOfOrderHeld++;
    } else if (held.count(f.seq)) {
        st.duplicatesDropped++;
    }
    sendAck(now);
}

void
ReliableSession::onWire(const uint8_t *data, size_t len, SimTime now)
{
    for (FrameEvent &ev : decoder.feed(data, len)) {
        if (ev.kind == FrameEvent::Kind::BadFrame) {
            st.badFrames++;
            continue;
        }
        Frame &f = ev.frame;
        if (auth) {
            // Split the trailing tag; an untagged or rejected frame
            // is discarded before it can touch the sequence space.
            if (f.payload.size() < FrameAuth::kTagSize) {
                st.authRejected++;
                continue;
            }
            FrameAuth::Tag tag;
            std::copy(f.payload.end() - FrameAuth::kTagSize,
                      f.payload.end(), tag.begin());
            f.payload.resize(f.payload.size() - FrameAuth::kTagSize);
            if (!auth->accept(f, tag)) {
                st.authRejected++;
                continue;
            }
        }
        handleFrame(f, now);
    }
}

void
ReliableSession::poll(SimTime now)
{
    if (failedV)
        return;
    for (auto &[seq, o] : outstanding) {
        if (o.nextAt > now)
            continue;
        if (o.retries >= cfg.maxRetries) {
            failedV = true;
            st.sessionFailures++;
            return;
        }
        o.retries++;
        st.retransmits++;
        if (o.rto >= cfg.rtoMaxUs)
            st.backoffCeilingHits++;
        else
            o.rto = std::min<SimTime>(o.rto * 2, cfg.rtoMaxUs);
        scheduleRetransmit(o, now);
        if (traceRing && tracer->enabled()) {
            obs::SpanRecord s;
            s.name = "retransmit";
            s.cat = "net";
            s.traceId = o.traceId;
            s.spanId = tracer->newSpanId();
            s.beginUs = now;
            s.endUs = now;
            s.arg0Name = "seq";
            s.arg0 = o.frame.seq;
            s.arg1Name = "retries";
            s.arg1 = o.retries;
            traceRing->push(s);
        }
        transmitFrame(o.frame, now);
    }
}

SimTime
ReliableSession::nextTimeoutAt() const
{
    SimTime at = ~SimTime(0);
    for (const auto &[seq, o] : outstanding)
        at = std::min(at, o.nextAt);
    return at;
}

void
ReliableSession::publishMetrics(MetricsRegistry &reg,
                                const MetricLabels &labels) const
{
    auto c = [&](const char *name, uint64_t v) {
        auto &counter = reg.counter(name, labels);
        if (v > counter.value())
            counter.inc(v - counter.value());
    };
    c("net_session_frames_sent", st.framesSent);
    c("net_session_retransmits", st.retransmits);
    c("net_session_acks_sent", st.acksSent);
    c("net_session_delivered", st.delivered);
    c("net_session_duplicates_dropped", st.duplicatesDropped);
    c("net_session_out_of_order_held", st.outOfOrderHeld);
    c("net_session_bad_frames", st.badFrames);
    c("net_session_auth_rejected", st.authRejected);
    c("net_session_foreign_epoch", st.foreignEpoch);
    c("net_session_backoff_ceiling_hits", st.backoffCeilingHits);
    c("net_session_send_refused", st.sendRefused);
    c("net_session_failures", st.sessionFailures);
    const FrameDecoderStats &d = decoder.stats();
    c("net_codec_frames", d.frames);
    c("net_codec_bad_crc", d.badCrc);
    c("net_codec_bad_length", d.badLength);
    c("net_codec_garbage_bytes", d.garbageBytes);
    reg.gauge("net_session_inflight", labels)
        .set(double(outstanding.size()));
    reg.gauge("net_session_epoch", labels).set(double(epochV));
}

} // namespace jaavr::net
