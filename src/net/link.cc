#include "net/link.hh"

namespace jaavr::net
{

void
LossyLink::enqueue(std::vector<uint8_t> data, SimTime at)
{
    queue.emplace(std::make_pair(at, orderCounter++), std::move(data));
}

void
LossyLink::transmit(std::vector<uint8_t> data, SimTime now)
{
    st.transmitted++;
    uint64_t index = txIndex++;

    if (tapV) {
        size_t before = data.size();
        std::vector<uint8_t> copy = data;
        if (!tapV->onTransmit(data, now, index)) {
            st.tapDropped++;
            return;
        }
        if (data.size() != before || data != copy)
            st.tapMutated++;
    }

    // One draw per impairment, always taken in the same order, so
    // the random sequence (and thus the whole campaign) replays
    // bit-for-bit at a fixed seed regardless of which branches hit.
    bool drop = rng.below(1000) < cfg.dropPermil;
    bool dup = rng.below(1000) < cfg.dupPermil;
    bool reorder = rng.below(1000) < cfg.reorderPermil;
    bool flip = rng.below(1000) < cfg.flipPermil;
    SimTime jitter = cfg.jitterUs ? rng.below(cfg.jitterUs + 1) : 0;
    uint64_t flipBit =
        data.empty() ? 0 : rng.below(uint64_t(data.size()) * 8);

    if (drop) {
        st.dropped++;
        return;
    }
    if (flip) {
        data[flipBit / 8] ^= uint8_t(1) << (flipBit % 8);
        st.bitFlipped++;
    }
    SimTime at = now + cfg.latencyUs + jitter;
    if (reorder) {
        at += cfg.reorderHoldUs;
        st.reordered++;
    }
    if (dup) {
        st.duplicated++;
        enqueue(data, at + 1); // the twin lands just behind
    }
    enqueue(std::move(data), at);
}

std::vector<std::vector<uint8_t>>
LossyLink::drain(SimTime now)
{
    std::vector<std::vector<uint8_t>> out;
    while (!queue.empty() && queue.begin()->first.first <= now) {
        out.push_back(std::move(queue.begin()->second));
        queue.erase(queue.begin());
        st.delivered++;
    }
    return out;
}

} // namespace jaavr::net
