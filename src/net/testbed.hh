/**
 * @file
 * Testbed: a multi-node network simulation harness shared by the
 * node tests and the chaos campaign. It owns the nodes and the
 * DuplexLinks between them and advances one explicit simulated
 * clock: each step drains every link's due datagrams into the
 * receiving node and then ticks every node's timers. Everything is
 * seeded, so a testbed run is bit-identical for a fixed set of
 * seeds.
 *
 * The links stay exposed (edge()): campaigns mutate impairment
 * rates mid-run, attach FaultLinkTaps, or inject forged datagrams
 * by transmitting straight into a direction's LossyLink.
 */

#ifndef JAAVR_NET_TESTBED_HH
#define JAAVR_NET_TESTBED_HH

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/link.hh"
#include "net/node.hh"

namespace jaavr::net
{

class Testbed
{
  public:
    /** @p curve and @p dsa are shared by all nodes; must outlive us. */
    Testbed(const WeierstrassCurve &curve, const Ecdsa &dsa)
        : curve(curve), dsa(dsa)
    {}

    /** Create and register a node; config.name must be unique. */
    Node &addNode(const NodeConfig &config);

    /**
     * Wire @p a and @p b together over a fresh DuplexLink (forward =
     * a->b) and register each node as the other's peer. Returns the
     * link for campaign-side manipulation.
     */
    DuplexLink &connect(const std::string &a, const std::string &b,
                        const LinkConfig &config);

    Node &node(const std::string &name) { return *nodes.at(name); }
    const Node &node(const std::string &name) const
    {
        return *nodes.at(name);
    }

    /** The link wired between @p a and @p b (either order). */
    DuplexLink &edge(const std::string &a, const std::string &b);

    /**
     * Advance simulated time to @p until in @p step increments,
     * draining every link into its receiving node and ticking every
     * node at each increment.
     */
    void run(SimTime until, SimTime step = 250);

    SimTime now() const { return clock; }

    /** publishMetrics() on every node into @p reg. */
    void publishMetrics(MetricsRegistry &reg) const;

  private:
    struct Edge
    {
        std::string a, b;
        DuplexLink link;

        Edge(std::string a, std::string b, const LinkConfig &c)
            : a(std::move(a)), b(std::move(b)), link(c)
        {}
    };

    const WeierstrassCurve &curve;
    const Ecdsa &dsa;
    SimTime clock = 0;
    std::map<std::string, std::unique_ptr<Node>> nodes;
    std::vector<std::unique_ptr<Edge>> edges;
};

} // namespace jaavr::net

#endif // JAAVR_NET_TESTBED_HH
