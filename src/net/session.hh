/**
 * @file
 * ReliableSession: exactly-once, in-order datagram delivery over a
 * LossyLink, in explicit simulated time.
 *
 * Mechanics (DESIGN.md "Network robustness layer"):
 *  - every Data frame consumes a sequence number; Ack frames are
 *    unsequenced and carry only the cumulative ack (= next expected
 *    seq), which is also piggybacked on every outgoing sequenced
 *    frame;
 *  - Hello/HelloAck frames are unsequenced too: they surface through
 *    the handshake callback untouched (the node retransmits them
 *    itself, under the same backoff policy). Keeping them out of the
 *    sequence space means every sequence number is claimed by a
 *    keyed-MAC frame, so a forged handshake frame — whose only gate
 *    before the identity-signature check is an unkeyed integrity
 *    tag — can never occupy a slot and shadow a later genuine Data
 *    frame into a silent duplicate-drop;
 *  - a bounded in-flight window backpressures the caller: send()
 *    refuses (returns false) once `window` frames await acks;
 *  - unacked frames retransmit on a per-frame timeout that backs off
 *    exponentially to a ceiling, with deterministic seeded jitter so
 *    two identically-seeded runs retransmit at identical times and
 *    competing senders don't synchronise;
 *  - retries are capped; exhausting them marks the session failed()
 *    and the node layer escalates (re-key, then quarantine);
 *  - out-of-order arrivals within the reorder buffer are held and
 *    released in order; duplicates and stale frames are dropped and
 *    re-acked.
 *
 * Sessions are bound to an epoch (the frame header's session field,
 * bumped by every re-key). Data/Ack frames from another epoch are
 * not processed here — they surface through the foreign-frame
 * callback (in practice: stale stragglers from a superseded epoch,
 * still in flight across a re-key).
 *
 * Authentication is delegated to a FrameAuth hook owned by the node:
 * the session appends the hook's 16-byte tag to every outgoing frame
 * and refuses (without acking — a forged frame must never advance
 * the sequence space) any incoming frame the hook rejects.
 */

#ifndef JAAVR_NET_SESSION_HH
#define JAAVR_NET_SESSION_HH

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/frame.hh"
#include "net/link.hh"
#include "obs/trace.hh"
#include "support/metrics.hh"
#include "support/random.hh"

namespace jaavr::net
{

/** Reliability knobs; defaults suit the simulated link scales. */
struct SessionConfig
{
    uint32_t window = 8;        ///< max unacked frames in flight
    uint32_t reorderBuffer = 32;///< out-of-order frames held
    SimTime rtoUs = 5'000;      ///< initial retransmission timeout
    SimTime rtoMaxUs = 160'000; ///< backoff ceiling
    uint32_t jitterPermil = 250;///< extra wait in [0, rto*j/1000]
    uint32_t maxRetries = 10;   ///< per frame; beyond -> failed()
    uint64_t seed = 1;          ///< jitter Rng seed
};

/**
 * Frame authentication hook (implemented by the node layer, which
 * owns the keys). seal() computes the tag appended to an outgoing
 * frame; accept() judges an incoming frame's detached tag.
 */
class FrameAuth
{
  public:
    static constexpr size_t kTagSize = 16;
    using Tag = std::array<uint8_t, kTagSize>;

    virtual ~FrameAuth() = default;

    virtual Tag seal(const Frame &f) = 0;
    virtual bool accept(const Frame &f, const Tag &tag) = 0;
};

struct SessionStats
{
    uint64_t framesSent = 0;      ///< first transmissions
    uint64_t retransmits = 0;
    uint64_t acksSent = 0;
    uint64_t delivered = 0;       ///< in-order deliveries upward
    uint64_t duplicatesDropped = 0;
    uint64_t outOfOrderHeld = 0;
    uint64_t badFrames = 0;       ///< codec-level rejects
    uint64_t authRejected = 0;    ///< FrameAuth rejects
    uint64_t foreignEpoch = 0;    ///< frames routed to the node
    uint64_t backoffCeilingHits = 0;
    uint64_t sendRefused = 0;     ///< window-full backpressure events
    uint64_t sessionFailures = 0; ///< retries exhausted
};

class ReliableSession
{
  public:
    using TransmitFn =
        std::function<void(std::vector<uint8_t>, SimTime)>;
    /** In-order, exactly-once upward delivery. */
    using DeliverFn = std::function<void(const Frame &, SimTime)>;
    /** Epoch-mismatched (but auth-screened) frames, for the node. */
    using ForeignFn = std::function<void(const Frame &, SimTime)>;
    /** Hello/HelloAck frames of any epoch, for the node. */
    using HandshakeFn = std::function<void(const Frame &, SimTime)>;
    /** A previously sent frame was cumulatively acknowledged. */
    using AckedFn = std::function<void(const Frame &, SimTime)>;

    explicit ReliableSession(const SessionConfig &config);

    void setTransmit(TransmitFn fn) { transmit = std::move(fn); }
    void setDeliver(DeliverFn fn) { deliver = std::move(fn); }
    void setForeign(ForeignFn fn) { foreign = std::move(fn); }
    void setHandshake(HandshakeFn fn) { handshake = std::move(fn); }
    void setAcked(AckedFn fn) { acked = std::move(fn); }
    /** nullptr disables tagging (tests only); must outlive us. */
    void setAuth(FrameAuth *a) { auth = a; }

    /**
     * Attach span tracing (both nullptr detaches): while the tracer
     * is enabled, every acked sequenced frame records a "send_ack"
     * span (first transmission → cumulative ack, in simulated time,
     * under the trace ID given to send()) and every retransmission
     * an instant event, into @p ring (the owning node's ring — a
     * node's sessions all run on its one driving thread).
     */
    void setTraceSink(obs::SpanTracer *t, obs::SpanRing *ring)
    {
        tracer = t;
        traceRing = ring;
    }

    /**
     * Abandon all reliability state and start epoch @p new_epoch with
     * fresh sequence spaces. In-flight frames are discarded — the
     * node re-queues whatever it still cares about.
     */
    void reset(uint32_t new_epoch);

    uint32_t epoch() const { return epochV; }

    /**
     * Queue @p payload as a sequenced frame of @p type. Returns
     * false — and takes no state — when the in-flight window is full
     * or the session has failed; the caller retries after acks
     * arrive (backpressure).
     */
    bool send(FrameType type, std::vector<uint8_t> payload,
              SimTime now, uint64_t trace_id = 0);

    /**
     * Emit an unsequenced cumulative Ack right now (sealed through
     * the FrameAuth hook like any frame). The node uses this as the
     * keyed handshake confirmation: the responder stops
     * retransmitting its HelloAck once any keyed frame arrives.
     */
    void sendAck(SimTime now);

    /** Sequence number the next send() will consume. */
    uint32_t nextSendSeq() const { return sendNext; }

    /** Feed raw link bytes (arbitrary clumps) at time @p now. */
    void onWire(const uint8_t *data, size_t len, SimTime now);

    void
    onWire(const std::vector<uint8_t> &data, SimTime now)
    {
        onWire(data.data(), data.size(), now);
    }

    /** Drive retransmissions due at @p now. */
    void poll(SimTime now);

    /** Earliest pending retransmission; ~0 when nothing in flight. */
    SimTime nextTimeoutAt() const;

    /** True once any frame exhausted maxRetries this epoch. */
    bool failed() const { return failedV; }

    size_t inflight() const { return outstanding.size(); }

    const SessionStats &stats() const { return st; }
    const FrameDecoderStats &decoderStats() const
    {
        return decoder.stats();
    }

    /**
     * Publish the session counters/gauges into @p reg under
     * net_session_* names with @p labels attached (the node adds
     * node=/peer= labels); also surfaces the codec counters.
     */
    void publishMetrics(MetricsRegistry &reg,
                        const MetricLabels &labels = {}) const;

  private:
    struct Outstanding
    {
        Frame frame;           ///< unsealed; re-sealed per transmit
        SimTime nextAt = 0;    ///< next retransmission due
        SimTime rto = 0;       ///< current (unjittered) timeout
        uint32_t retries = 0;
        uint64_t traceId = 0;  ///< propagated from send()
        SimTime firstSentAt = 0; ///< send→ack span begin
    };

    void transmitFrame(Frame f, SimTime now);
    void processAck(uint32_t ack, SimTime now);
    void scheduleRetransmit(Outstanding &o, SimTime now);
    void handleFrame(const Frame &f, SimTime now);

    SessionConfig cfg;
    Rng rng;
    FrameAuth *auth = nullptr;
    TransmitFn transmit;
    DeliverFn deliver;
    ForeignFn foreign;
    HandshakeFn handshake;
    AckedFn acked;

    FrameDecoder decoder;
    SessionStats st;
    obs::SpanTracer *tracer = nullptr;
    obs::SpanRing *traceRing = nullptr;

    uint32_t epochV = 0;
    uint32_t sendNext = 0; ///< next sequence number to assign
    uint32_t recvNext = 0; ///< next sequence number expected
    bool failedV = false;
    std::map<uint32_t, Outstanding> outstanding; ///< seq -> frame
    std::map<uint32_t, Frame> held;              ///< out-of-order
};

} // namespace jaavr::net

#endif // JAAVR_NET_SESSION_HH
