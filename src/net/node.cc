#include "net/node.hh"

#include <algorithm>

#include "curves/validate.hh"
#include "support/logging.hh"
#include "support/sha256.hh"

namespace jaavr::net
{

namespace
{

void
putU32(std::string &s, uint32_t v)
{
    s.push_back(char(v & 0xff));
    s.push_back(char((v >> 8) & 0xff));
    s.push_back(char((v >> 16) & 0xff));
    s.push_back(char((v >> 24) & 0xff));
}

/** Length-prefixed, so names can never splice into each other. */
void
putName(std::string &s, const std::string &name)
{
    putU32(s, uint32_t(name.size()));
    s += name;
}

std::string
helloTranscript(const char *label, uint32_t epoch,
                const std::string &from, const std::string &to,
                const uint8_t *eph, size_t eph_len)
{
    std::string s(label);
    putU32(s, epoch);
    putName(s, from);
    putName(s, to);
    s.append(reinterpret_cast<const char *>(eph), eph_len);
    return s;
}

std::string
telemetryTranscript(uint32_t epoch, const std::string &from,
                    const std::string &to,
                    const std::vector<uint8_t> &app)
{
    std::string s("jaavr-telemetry");
    putU32(s, epoch);
    putName(s, from);
    putName(s, to);
    s.append(reinterpret_cast<const char *>(app.data()), app.size());
    return s;
}

/** The bytes a frame tag commits to: header fields plus payload. */
std::vector<uint8_t>
tagInput(const Frame &f)
{
    std::vector<uint8_t> in;
    in.reserve(13 + f.payload.size());
    in.push_back(uint8_t(f.type));
    for (uint32_t v : {f.session, f.seq, f.ack})
        for (int i = 0; i < 4; i++)
            in.push_back(uint8_t(v >> (8 * i)));
    in.insert(in.end(), f.payload.begin(), f.payload.end());
    return in;
}

FrameAuth::Tag
truncate16(const std::array<uint8_t, Sha256::digestSize> &digest)
{
    FrameAuth::Tag tag;
    std::copy(digest.begin(), digest.begin() + tag.size(),
              tag.begin());
    return tag;
}

/**
 * Integrity-only tag for handshake frames: anyone can compute it, so
 * it rejects transmission corruption, not forgery — the identity
 * signature inside the payload is the forgery gate.
 */
FrameAuth::Tag
unkeyedFrameTag(const Frame &f)
{
    std::vector<uint8_t> in = tagInput(f);
    std::string msg("jaavr-net-unkeyed");
    msg.append(reinterpret_cast<const char *>(in.data()), in.size());
    return truncate16(Sha256::digest(msg));
}

FrameAuth::Tag
keyedFrameTag(const std::vector<uint8_t> &key, const Frame &f)
{
    return truncate16(hmacSha256(key, tagInput(f)));
}

} // namespace

const char *
peerStateName(PeerState s)
{
    switch (s) {
    case PeerState::Idle: return "idle";
    case PeerState::Handshaking: return "handshaking";
    case PeerState::Established: return "established";
    case PeerState::Quarantined: return "quarantined";
    }
    return "?";
}

/**
 * Per-peer FrameAuth: Hello/HelloAck judged by the unkeyed tag,
 * Data/Ack by HMAC under the key of the epoch named in the frame
 * header. The last two epoch keys are retained so stale frames from
 * the epoch just superseded still verify (and are then discarded as
 * foreign by the session) instead of counting as forgeries and
 * feeding the re-key ladder a false positive.
 */
class Node::PeerAuth final : public FrameAuth
{
  public:
    Tag
    seal(const Frame &f) override
    {
        // Only sequenced/Ack traffic flows through the session; the
        // node seals its raw handshake frames itself.
        auto it = keys.find(f.session);
        static const std::vector<uint8_t> kNoKey;
        return keyedFrameTag(it == keys.end() ? kNoKey : it->second,
                             f);
    }

    bool
    accept(const Frame &f, const Tag &tag) override
    {
        if (f.type == FrameType::Hello ||
            f.type == FrameType::HelloAck)
            return tag == unkeyedFrameTag(f);
        auto it = keys.find(f.session);
        if (it == keys.end()) {
            // An epoch we hold no key for: unverifiable, dropped,
            // but NOT evidence of tampering (e.g. the keyed Ack a
            // just-keyed responder sends before our HelloAck lands).
            noKeyDropsV++;
            return false;
        }
        if (tag != keyedFrameTag(it->second, f)) {
            keyedRejectsV++;
            return false;
        }
        keyedAcceptsV++;
        return true;
    }

    void
    setKey(uint32_t epoch, std::vector<uint8_t> key)
    {
        keys[epoch] = std::move(key);
        while (keys.size() > 2)
            keys.erase(keys.begin());
    }

    uint64_t keyedRejects() const { return keyedRejectsV; }
    uint64_t keyedAccepts() const { return keyedAcceptsV; }
    uint64_t noKeyDrops() const { return noKeyDropsV; }

  private:
    std::map<uint32_t, std::vector<uint8_t>> keys;
    uint64_t keyedRejectsV = 0;
    uint64_t keyedAcceptsV = 0;
    uint64_t noKeyDropsV = 0;
};

struct Node::Peer
{
    explicit Peer(const SessionConfig &sc) : session(sc) {}

    std::string name;
    AffinePoint identityKey;
    TransmitFn transmit;

    PeerState state = PeerState::Idle;
    uint32_t epoch = 0; ///< 0 = never keyed; handshakes start at 1
    PeerAuth auth;
    ReliableSession session;

    bool initiator = false;
    EcdsaKeyPair eph; ///< our ephemeral for the epoch in progress
    SimTime handshakeDeadline = 0;

    // Raw handshake frames under node-driven retransmission; an
    // empty byte vector means nothing pending.
    std::vector<uint8_t> helloBytes;
    SimTime helloNextAt = 0;
    SimTime helloRto = 0;
    uint32_t helloRetries = 0;
    std::vector<uint8_t> helloAckBytes;
    SimTime helloAckNextAt = 0;
    SimTime helloAckRto = 0;
    uint32_t helloAckRetries = 0;
    uint64_t seenKeyedAccepts = 0; ///< auth counter watermark
    uint64_t seenKeyedRejects = 0; ///< auth counter watermark

    // Degradation ladders.
    uint32_t authFailStreak = 0;
    uint32_t failStreak = 0;
    SimTime quarantineHold = 0; ///< doubles per quarantine, capped
    SimTime quarantineUntil = 0;

    // App telemetry: raw (unsigned) payloads pending first send, and
    // the raw payload behind every in-flight Data seq so an epoch
    // switch can pull them back for re-signing. Each carries its
    // trace identity and queue time so the ack can close one
    // "telemetry" span across retransmits and re-keys.
    struct AppMsg
    {
        std::vector<uint8_t> bytes;
        uint64_t traceId = 0;
        SimTime queuedAt = 0;
    };
    std::deque<AppMsg> pendingApp;
    std::map<uint32_t, AppMsg> inflightApp;
};

Node::Node(const NodeConfig &config, const WeierstrassCurve &curve,
           const Ecdsa &dsa)
    : cfg(config), curve(curve), dsa(dsa), rng(config.seed)
{
    size_t bits = std::max(dsa.order().bitLength(),
                           curve.field().modulus().bitLength());
    scalarBytes = (bits + 7) / 8;
    identityPair = dsa.generateKey(rng);
}

Node::~Node() = default;

Node::Peer &
Node::peerRef(const std::string &peer)
{
    return *peers.at(peer);
}

const Node::Peer &
Node::peerRef(const std::string &peer) const
{
    return *peers.at(peer);
}

void
Node::addPeer(const std::string &peer,
              const AffinePoint &identity_key, TransmitFn transmit)
{
    SessionConfig sc = cfg.session;
    // Derive a per-(node, peer) jitter seed so identical nodes don't
    // retransmit in lockstep; FNV-1a over "name>peer" mixed with the
    // node seed keeps it reproducible.
    uint64_t h = 14695981039346656037ULL ^ cfg.seed;
    for (char c : cfg.name + ">" + peer)
        h = (h ^ uint8_t(c)) * 1099511628211ULL;
    sc.seed = h;

    auto owned = std::make_unique<Peer>(sc);
    Peer *p = owned.get();
    p->name = peer;
    p->identityKey = identity_key;
    p->transmit = std::move(transmit);

    p->session.setAuth(&p->auth);
    p->session.setTransmit([p](std::vector<uint8_t> data, SimTime t) {
        p->transmit(std::move(data), t);
    });
    p->session.setDeliver([this, p](const Frame &f, SimTime t) {
        if (f.type == FrameType::Data)
            handleData(*p, f, t);
    });
    p->session.setHandshake([this, p](const Frame &f, SimTime t) {
        handleHandshake(*p, f, t);
    });
    p->session.setForeign([this](const Frame &, SimTime) {
        st.staleEpochIgnored++;
    });
    p->session.setAcked([this, p](const Frame &f, SimTime t) {
        auto it = p->inflightApp.find(f.seq);
        if (it != p->inflightApp.end()) {
            // Delivery confirmed: close the end-to-end telemetry
            // span (queue time → cumulative ack, across any
            // retransmits and re-keys in between).
            if (traceRing && tracer->enabled()) {
                obs::SpanRecord s;
                s.name = "telemetry";
                s.cat = "net";
                s.traceId = it->second.traceId;
                s.spanId = tracer->newSpanId();
                s.beginUs = it->second.queuedAt;
                s.endUs = std::max(t, it->second.queuedAt);
                s.arg0Name = "seq";
                s.arg0 = f.seq;
                s.arg1Name = "epoch";
                s.arg1 = f.session;
                traceRing->push(s);
            }
            p->inflightApp.erase(it);
            st.telemetryAcked++;
        }
    });
    if (tracer)
        p->session.setTraceSink(tracer, traceRing);

    peers.emplace(peer, std::move(owned));
}

void
Node::setTracer(obs::SpanTracer *t)
{
    tracer = t;
    traceRing = tracer ? tracer->ring("node:" + cfg.name) : nullptr;
    for (auto &[name, p] : peers)
        p->session.setTraceSink(tracer, traceRing);
}

void
Node::setFlightRecorder(obs::FlightRecorder *f)
{
    flight = f;
    flightSrc = flight ? flight->source("node:" + cfg.name) : nullptr;
}

void
Node::noteEvent(const char *name, SimTime now, const char *arg0_name,
                uint64_t arg0, const char *arg1_name, uint64_t arg1,
                uint64_t trace_id)
{
    if (!traceRing || !tracer->enabled())
        return;
    obs::SpanRecord s;
    s.name = name;
    s.cat = "net";
    s.traceId = trace_id;
    s.spanId = tracer->newSpanId();
    s.beginUs = now;
    s.endUs = now;
    s.arg0Name = arg0_name;
    s.arg0 = arg0;
    s.arg1Name = arg1_name;
    s.arg1 = arg1;
    traceRing->push(s);
}

std::vector<uint8_t>
Node::sealRaw(const Frame &f) const
{
    Frame sealed = f;
    FrameAuth::Tag tag = unkeyedFrameTag(f);
    sealed.payload.insert(sealed.payload.end(), tag.begin(),
                          tag.end());
    return encodeFrame(sealed);
}

SimTime
Node::backoffStep(Peer &, SimTime &rto)
{
    SimTime jitterSpan = rto * cfg.session.jitterPermil / 1000;
    SimTime jitter = jitterSpan ? rng.below(jitterSpan + 1) : 0;
    SimTime delay = rto + jitter;
    rto = std::min<SimTime>(rto * 2, cfg.session.rtoMaxUs);
    return delay;
}

std::vector<uint8_t>
Node::helloPayload(Peer &p, const char *label)
{
    std::vector<uint8_t> out;
    out.reserve(4 * scalarBytes);
    std::vector<uint8_t> x = p.eph.q.x.toBytes(scalarBytes);
    std::vector<uint8_t> y = p.eph.q.y.toBytes(scalarBytes);
    out.insert(out.end(), x.begin(), x.end());
    out.insert(out.end(), y.begin(), y.end());
    std::string msg = helloTranscript(label, p.epoch, cfg.name,
                                      p.name, out.data(), out.size());
    EcdsaSignature sig = dsa.sign(msg, identityPair.d, rng);
    std::vector<uint8_t> r = sig.r.toBytes(scalarBytes);
    std::vector<uint8_t> s = sig.s.toBytes(scalarBytes);
    out.insert(out.end(), r.begin(), r.end());
    out.insert(out.end(), s.begin(), s.end());
    return out;
}

bool
Node::verifyHello(const Peer &p, const char *label, const Frame &f,
                  AffinePoint &eph_out) const
{
    const std::vector<uint8_t> &pl = f.payload;
    if (pl.size() != 4 * scalarBytes)
        return false;
    auto slice = [&](size_t i) {
        return BigUInt::fromBytes(std::vector<uint8_t>(
            pl.begin() + i * scalarBytes,
            pl.begin() + (i + 1) * scalarBytes));
    };
    AffinePoint eph(slice(0), slice(1));
    const BigUInt &n = dsa.order();
    if (!validatePoint(curve, eph, &n))
        return false;
    EcdsaSignature sig{slice(2), slice(3)};
    std::string msg = helloTranscript(label, f.session, p.name,
                                      cfg.name, pl.data(),
                                      2 * scalarBytes);
    if (!dsa.verify(msg, sig, p.identityKey))
        return false;
    eph_out = eph;
    return true;
}

bool
Node::deriveKey(Peer &p, const AffinePoint &peer_eph,
                const std::string &initiator,
                const std::string &responder)
{
    AffinePoint shared = curve.mulLadder(p.eph.d, peer_eph);
    if (shared.inf)
        return false;
    std::string kdf("jaavr-net-kdf");
    putU32(kdf, p.epoch);
    std::vector<uint8_t> x = shared.x.toBytes(scalarBytes);
    kdf.append(reinterpret_cast<const char *>(x.data()), x.size());
    putName(kdf, initiator);
    putName(kdf, responder);
    auto digest = Sha256::digest(kdf);
    p.auth.setKey(p.epoch,
                  std::vector<uint8_t>(digest.begin(), digest.end()));
    return true;
}

void
Node::beginHandshake(Peer &p, uint32_t epoch, SimTime now)
{
    p.epoch = epoch;
    p.state = PeerState::Handshaking;
    p.initiator = true;
    p.session.reset(epoch);
    p.eph = dsa.generateKey(rng);

    Frame h;
    h.type = FrameType::Hello;
    h.session = epoch;
    h.payload = helloPayload(p, "jaavr-hello");
    p.helloBytes = sealRaw(h);
    p.helloRto = cfg.session.rtoUs;
    p.helloRetries = 0;
    p.helloNextAt = now + backoffStep(p, p.helloRto);
    p.helloAckBytes.clear();
    p.handshakeDeadline = now + cfg.handshakeTimeoutUs;
    noteEvent("handshake_begin", now, "epoch", epoch, "pending",
              p.pendingApp.size());
    p.transmit(p.helloBytes, now);
}

void
Node::connect(const std::string &peer, SimTime now)
{
    Peer &p = peerRef(peer);
    if (p.state == PeerState::Quarantined ||
        p.state == PeerState::Handshaking)
        return;
    if (p.state == PeerState::Established)
        return;
    beginHandshake(p, p.epoch + 1, now);
}

void
Node::establish(Peer &p, SimTime now)
{
    p.state = PeerState::Established;
    p.handshakeDeadline = 0;
    p.failStreak = 0;
    p.authFailStreak = 0;
    p.quarantineHold = 0;
    st.handshakesCompleted++;
    noteEvent("established", now, "epoch", p.epoch, "completed",
              st.handshakesCompleted);
    flushTelemetry(p, now);
}

void
Node::quarantine(Peer &p, SimTime now)
{
    st.quarantineEvents++;
    p.state = PeerState::Quarantined;
    p.failStreak = 0;
    p.handshakeDeadline = 0;
    p.helloBytes.clear();
    p.helloAckBytes.clear();
    p.quarantineHold =
        p.quarantineHold
            ? std::min<SimTime>(p.quarantineHold * 2,
                                cfg.quarantineMaxUs)
            : cfg.quarantineBaseUs;
    p.quarantineUntil = now + p.quarantineHold;
    noteEvent("quarantine", now, "hold_us", p.quarantineHold,
              "epoch", p.epoch);
    if (flightSrc)
        flightSrc->record(now, "quarantine",
                          csprintf("peer %s held %llu us",
                                   p.name.c_str(),
                                   static_cast<unsigned long long>(
                                       p.quarantineHold)),
                          p.quarantineHold, p.epoch);
}

void
Node::escalateFailure(Peer &p, SimTime now)
{
    st.handshakeFailures++;
    p.failStreak++;
    requeueUnacked(p);
    p.helloBytes.clear();
    p.helloAckBytes.clear();
    if (p.failStreak >= cfg.failStreakQuarantineThreshold)
        quarantine(p, now);
    else
        beginHandshake(p, p.epoch + 1, now);
}

void
Node::authFailure(Peer &p, SimTime now)
{
    st.authFailures++;
    if (p.state != PeerState::Established)
        return;
    p.authFailStreak++;
    noteEvent("auth_fail", now, "streak", p.authFailStreak, "epoch",
              p.epoch);
    if (p.authFailStreak >= cfg.authFailRekeyThreshold) {
        st.rekeys++;
        p.authFailStreak = 0;
        // The forgery-rejection streak is a flight trigger: the
        // events leading up to the re-key are exactly the narrative
        // a postmortem wants.
        if (flightSrc) {
            flightSrc->record(
                now, "forgery_streak",
                csprintf("peer %s: %u rejects -> rekey epoch %u",
                         p.name.c_str(), cfg.authFailRekeyThreshold,
                         p.epoch + 1),
                cfg.authFailRekeyThreshold, p.epoch + 1);
            flight->trigger("net_forgery_streak");
        }
        noteEvent("rekey", now, "epoch", p.epoch + 1, "rekeys",
                  st.rekeys);
        requeueUnacked(p);
        beginHandshake(p, p.epoch + 1, now);
    }
}

void
Node::requeueUnacked(Peer &p)
{
    // Back to the front, highest seq first, so the pending queue
    // keeps the original submission order for re-signing.
    for (auto it = p.inflightApp.rbegin(); it != p.inflightApp.rend();
         ++it)
        p.pendingApp.push_front(std::move(it->second));
    p.inflightApp.clear();
}

std::vector<uint8_t>
Node::signTelemetry(Peer &p, const std::vector<uint8_t> &app)
{
    std::string msg =
        telemetryTranscript(p.epoch, cfg.name, p.name, app);
    EcdsaSignature sig = dsa.sign(msg, identityPair.d, rng);
    std::vector<uint8_t> out = app;
    std::vector<uint8_t> r = sig.r.toBytes(scalarBytes);
    std::vector<uint8_t> s = sig.s.toBytes(scalarBytes);
    out.insert(out.end(), r.begin(), r.end());
    out.insert(out.end(), s.begin(), s.end());
    return out;
}

void
Node::flushTelemetry(Peer &p, SimTime now)
{
    while (p.state == PeerState::Established &&
           !p.pendingApp.empty()) {
        uint32_t seq = p.session.nextSendSeq();
        std::vector<uint8_t> framed =
            signTelemetry(p, p.pendingApp.front().bytes);
        if (!p.session.send(FrameType::Data, std::move(framed), now,
                            p.pendingApp.front().traceId))
            break; // window full; tick() retries after acks
        p.inflightApp.emplace(seq, std::move(p.pendingApp.front()));
        p.pendingApp.pop_front();
    }
}

bool
Node::sendTelemetry(const std::string &peer,
                    std::vector<uint8_t> payload, SimTime now)
{
    Peer &p = peerRef(peer);
    if (p.pendingApp.size() + p.inflightApp.size() >=
        cfg.telemetryQueueCap) {
        st.telemetryRefused++;
        // Backpressure onset is a flight trigger; later refusals
        // only count (the app may hammer a saturated queue).
        if (flightSrc && st.telemetryRefused == 1) {
            flightSrc->record(now, "backpressure",
                              csprintf("peer %s app queue full",
                                       p.name.c_str()),
                              cfg.telemetryQueueCap, p.epoch);
            flight->trigger("net_backpressure");
        }
        return false;
    }
    st.telemetryQueued++;
    Peer::AppMsg msg;
    msg.bytes = std::move(payload);
    msg.traceId =
        tracer && tracer->enabled() ? tracer->newTraceId() : 0;
    msg.queuedAt = now;
    p.pendingApp.push_back(std::move(msg));
    if (p.state == PeerState::Established)
        flushTelemetry(p, now);
    else if (p.state == PeerState::Idle)
        connect(peer, now);
    return true;
}

void
Node::handleHello(Peer &p, const Frame &f, SimTime now)
{
    if (f.session < p.epoch) {
        st.staleEpochIgnored++;
        return;
    }
    if (f.session == p.epoch) {
        if (p.state == PeerState::Established && !p.initiator) {
            // Duplicate Hello: our HelloAck was likely lost.
            if (!p.helloAckBytes.empty()) {
                st.handshakeRetransmits++;
                p.transmit(p.helloAckBytes, now);
            }
            return;
        }
        if (p.state == PeerState::Handshaking && p.initiator &&
            cfg.name < p.name)
            return; // cross-hello: the smaller name keeps initiating
        if (p.state != PeerState::Handshaking)
            return;
        // Cross-hello, yielding side: fall through and respond with
        // the ephemeral we already committed to our own Hello.
    }

    // Verify the identity signature BEFORE touching any state: a
    // forged high-epoch Hello must not be able to reset a session.
    AffinePoint peerEph;
    if (!verifyHello(p, "jaavr-hello", f, peerEph)) {
        st.authFailures++;
        return;
    }
    if (f.session > p.epoch) {
        requeueUnacked(p);
        p.epoch = f.session;
        p.session.reset(p.epoch);
        p.eph = dsa.generateKey(rng);
    }
    p.initiator = false;
    p.helloBytes.clear();
    if (!deriveKey(p, peerEph, p.name, cfg.name)) {
        st.authFailures++;
        return;
    }

    Frame a;
    a.type = FrameType::HelloAck;
    a.session = p.epoch;
    a.payload = helloPayload(p, "jaavr-helloack");
    p.helloAckBytes = sealRaw(a);
    p.helloAckRto = cfg.session.rtoUs;
    p.helloAckRetries = 0;
    p.helloAckNextAt = now + backoffStep(p, p.helloAckRto);
    p.transmit(p.helloAckBytes, now);
    establish(p, now);
}

void
Node::handleHelloAck(Peer &p, const Frame &f, SimTime now)
{
    if (f.session != p.epoch) {
        st.staleEpochIgnored++;
        return;
    }
    if (p.state == PeerState::Established && p.initiator) {
        // Duplicate HelloAck: our keyed confirmation was lost.
        p.session.sendAck(now);
        return;
    }
    if (p.state != PeerState::Handshaking || !p.initiator)
        return;
    AffinePoint peerEph;
    if (!verifyHello(p, "jaavr-helloack", f, peerEph)) {
        st.authFailures++;
        return;
    }
    if (!deriveKey(p, peerEph, cfg.name, p.name)) {
        st.authFailures++;
        return;
    }
    p.helloBytes.clear();
    establish(p, now);
    // Keyed confirmation; the responder stops HelloAck retransmits
    // on its first accepted keyed frame.
    p.session.sendAck(now);
}

void
Node::handleHandshake(Peer &p, const Frame &f, SimTime now)
{
    if (f.type == FrameType::Hello)
        handleHello(p, f, now);
    else
        handleHelloAck(p, f, now);
}

void
Node::handleData(Peer &p, const Frame &f, SimTime now)
{
    if (f.payload.size() < 2 * scalarBytes) {
        st.telemetryRejected++;
        authFailure(p, now);
        return;
    }
    size_t appLen = f.payload.size() - 2 * scalarBytes;
    std::vector<uint8_t> app(f.payload.begin(),
                             f.payload.begin() + appLen);
    auto scalar = [&](size_t i) {
        return BigUInt::fromBytes(std::vector<uint8_t>(
            f.payload.begin() + appLen + i * scalarBytes,
            f.payload.begin() + appLen + (i + 1) * scalarBytes));
    };
    EcdsaSignature sig{scalar(0), scalar(1)};
    std::string msg =
        telemetryTranscript(f.session, p.name, cfg.name, app);
    if (!dsa.verify(msg, sig, p.identityKey)) {
        st.telemetryRejected++;
        authFailure(p, now);
        return;
    }
    st.telemetryAccepted++;
    if (onTelemetry)
        onTelemetry(p.name, app, now);
}

void
Node::onWire(const std::string &peer,
             const std::vector<uint8_t> &data, SimTime now)
{
    Peer &p = peerRef(peer);
    if (p.state == PeerState::Quarantined)
        return; // no traffic in or out while quarantined
    p.session.onWire(data, now);

    // Keyed-MAC rejects observed by the auth hook feed the re-key
    // ladder; an accepted keyed frame is the responder's cue that
    // the initiator holds the key, so HelloAck retransmission stops.
    while (p.seenKeyedRejects < p.auth.keyedRejects()) {
        p.seenKeyedRejects++;
        authFailure(p, now);
        if (p.state != PeerState::Established)
            break;
    }
    p.seenKeyedRejects = p.auth.keyedRejects();
    if (p.auth.keyedAccepts() > p.seenKeyedAccepts) {
        p.seenKeyedAccepts = p.auth.keyedAccepts();
        if (!p.initiator)
            p.helloAckBytes.clear();
    }
}

void
Node::tick(SimTime now)
{
    for (auto &[name, owned] : peers) {
        Peer &p = *owned;
        if (p.state == PeerState::Idle)
            continue;
        if (p.state == PeerState::Quarantined) {
            if (now >= p.quarantineUntil)
                beginHandshake(p, p.epoch + 1, now);
            continue;
        }
        p.session.poll(now);
        if (p.session.failed()) {
            escalateFailure(p, now);
            continue;
        }
        if (!p.helloBytes.empty() && now >= p.helloNextAt) {
            if (p.helloRetries >= cfg.session.maxRetries) {
                escalateFailure(p, now);
                continue;
            }
            p.helloRetries++;
            st.handshakeRetransmits++;
            p.helloNextAt = now + backoffStep(p, p.helloRto);
            p.transmit(p.helloBytes, now);
        }
        if (!p.helloAckBytes.empty() && now >= p.helloAckNextAt) {
            if (p.helloAckRetries >= cfg.session.maxRetries) {
                escalateFailure(p, now);
                continue;
            }
            p.helloAckRetries++;
            st.handshakeRetransmits++;
            p.helloAckNextAt = now + backoffStep(p, p.helloAckRto);
            p.transmit(p.helloAckBytes, now);
        }
        if (p.state == PeerState::Handshaking &&
            p.handshakeDeadline && now >= p.handshakeDeadline) {
            escalateFailure(p, now);
            continue;
        }
        if (p.state == PeerState::Established)
            flushTelemetry(p, now);
    }
}

PeerState
Node::peerState(const std::string &peer) const
{
    return peerRef(peer).state;
}

uint32_t
Node::peerEpoch(const std::string &peer) const
{
    return peerRef(peer).epoch;
}

size_t
Node::peerBacklog(const std::string &peer) const
{
    const Peer &p = peerRef(peer);
    return p.pendingApp.size() + p.inflightApp.size();
}

const SessionStats &
Node::sessionStats(const std::string &peer) const
{
    return peerRef(peer).session.stats();
}

void
Node::publishMetrics(MetricsRegistry &reg) const
{
    MetricLabels nodeLabels{{"node", cfg.name}};
    auto c = [&](const char *name, uint64_t v) {
        auto &counter = reg.counter(name, nodeLabels);
        if (v > counter.value())
            counter.inc(v - counter.value());
    };
    c("net_node_handshakes_completed", st.handshakesCompleted);
    c("net_node_handshake_failures", st.handshakeFailures);
    c("net_node_handshake_retransmits", st.handshakeRetransmits);
    c("net_node_rekeys", st.rekeys);
    c("net_node_quarantine_events", st.quarantineEvents);
    c("net_node_auth_failures", st.authFailures);
    c("net_node_telemetry_queued", st.telemetryQueued);
    c("net_node_telemetry_refused", st.telemetryRefused);
    c("net_node_telemetry_acked", st.telemetryAcked);
    c("net_node_telemetry_accepted", st.telemetryAccepted);
    c("net_node_telemetry_rejected", st.telemetryRejected);
    c("net_node_stale_epoch_ignored", st.staleEpochIgnored);

    uint64_t quarantined = 0;
    for (const auto &[peerName, owned] : peers)
        if (owned->state == PeerState::Quarantined)
            quarantined++;
    reg.gauge("net_node_quarantined_peers", nodeLabels)
        .set(double(quarantined));

    for (const auto &[peerName, owned] : peers) {
        const Peer &p = *owned;
        MetricLabels labels{{"node", cfg.name}, {"peer", peerName}};
        reg.gauge("net_peer_state", labels)
            .set(double(uint8_t(p.state)));
        reg.gauge("net_peer_epoch", labels).set(double(p.epoch));
        reg.gauge("net_peer_backlog", labels)
            .set(double(p.pendingApp.size() + p.inflightApp.size()));
        p.session.publishMetrics(reg, labels);
    }
}

} // namespace jaavr::net
