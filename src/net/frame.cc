#include "net/frame.hh"

#include "support/crc32.hh"

namespace jaavr::net
{

namespace
{

void
put32(std::vector<uint8_t> &out, uint32_t v)
{
    out.push_back(static_cast<uint8_t>(v));
    out.push_back(static_cast<uint8_t>(v >> 8));
    out.push_back(static_cast<uint8_t>(v >> 16));
    out.push_back(static_cast<uint8_t>(v >> 24));
}

uint32_t
get32(const uint8_t *p)
{
    return uint32_t(p[0]) | (uint32_t(p[1]) << 8) |
           (uint32_t(p[2]) << 16) | (uint32_t(p[3]) << 24);
}

} // anonymous namespace

const char *
frameTypeName(FrameType t)
{
    switch (t) {
      case FrameType::Hello: return "hello";
      case FrameType::HelloAck: return "hello_ack";
      case FrameType::Data: return "data";
      case FrameType::Ack: return "ack";
    }
    return "?";
}

std::vector<uint8_t>
encodeFrame(const Frame &f)
{
    size_t plen = f.payload.size();
    if (plen > kFrameMaxPayload)
        plen = kFrameMaxPayload;

    std::vector<uint8_t> out;
    out.reserve(kFrameHeaderSize + plen + kFrameCrcSize);
    out.push_back(kFrameSync0);
    out.push_back(kFrameSync1);
    out.push_back(kFrameVersion);
    out.push_back(static_cast<uint8_t>(f.type));
    put32(out, f.session);
    put32(out, f.seq);
    put32(out, f.ack);
    out.push_back(static_cast<uint8_t>(plen));
    out.push_back(static_cast<uint8_t>(plen >> 8));
    out.insert(out.end(), f.payload.begin(), f.payload.begin() + plen);
    put32(out, crc32(out.data() + 2, out.size() - 2));
    return out;
}

std::vector<FrameEvent>
FrameDecoder::feed(const uint8_t *data, size_t len)
{
    buf.insert(buf.end(), data, data + len);
    std::vector<FrameEvent> events;

    size_t pos = 0;
    for (;;) {
        // Hunt for the sync word; everything skipped is garbage.
        size_t sync = pos;
        while (sync + 1 < buf.size() &&
               !(buf[sync] == kFrameSync0 && buf[sync + 1] == kFrameSync1))
            sync++;
        st.garbageBytes += sync - pos;
        pos = sync;
        if (pos + 1 >= buf.size())
            break; // no complete sync word buffered yet

        if (buf.size() - pos < kFrameHeaderSize)
            break; // header incomplete; wait for more bytes

        const uint8_t *hdr = buf.data() + pos;
        uint8_t version = hdr[2];
        size_t plen = size_t(hdr[16]) | (size_t(hdr[17]) << 8);

        // A bad version or length field means the header itself is
        // suspect: resynchronise just past this sync word so a frame
        // hiding inside the claimed extent is still found.
        if (version != kFrameVersion) {
            st.badVersion++;
            events.push_back({FrameEvent::Kind::BadFrame, {},
                              "bad version"});
            pos += 2;
            continue;
        }
        if (plen > kFrameMaxPayload) {
            st.badLength++;
            events.push_back({FrameEvent::Kind::BadFrame, {},
                              "bad length"});
            pos += 2;
            continue;
        }

        size_t total = kFrameHeaderSize + plen + kFrameCrcSize;
        if (buf.size() - pos < total)
            break; // body incomplete (bounded: plen <= max)

        uint32_t want = get32(hdr + kFrameHeaderSize + plen);
        uint32_t got = crc32(hdr + 2, kFrameHeaderSize + plen - 2);
        if (want != got) {
            st.badCrc++;
            events.push_back({FrameEvent::Kind::BadFrame, {},
                              "bad crc"});
            pos += 2;
            continue;
        }

        FrameEvent ev;
        ev.kind = FrameEvent::Kind::Frame;
        ev.frame.type = static_cast<FrameType>(hdr[3]);
        ev.frame.session = get32(hdr + 4);
        ev.frame.seq = get32(hdr + 8);
        ev.frame.ack = get32(hdr + 12);
        ev.frame.payload.assign(hdr + kFrameHeaderSize,
                                hdr + kFrameHeaderSize + plen);
        events.push_back(std::move(ev));
        st.frames++;
        pos += total;
    }

    // Drop consumed bytes. The leftover is either a partial frame
    // that starts with a sync pair (keep it whole) or — when the
    // sync hunt ran off the end — at most one byte, kept only if it
    // could be the first half of a split sync word.
    if (buf.size() - pos == 1 && buf[pos] != kFrameSync0) {
        st.garbageBytes++;
        pos++;
    }
    buf.erase(buf.begin(), buf.begin() + pos);
    return events;
}

} // namespace jaavr::net
